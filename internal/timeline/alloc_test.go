package timeline

import (
	"testing"

	"espresso/internal/cluster"
	"espresso/internal/strategy"
)

// The decision algorithm's inner loop is SetOption + Run with RecordOps
// off, executed tens of thousands of times per strategy selection. These
// tests pin the loop at zero allocations per probe — the property the
// engine's scratch Result, copy-on-write chains, and fmt-free option
// validation exist to provide.

// hotLoopEngine returns an engine with the probe-loop configuration
// (RecordOps off) prepared with s, plus two candidate options to swap.
func hotLoopEngine(t testing.TB) (*Engine, *strategy.Strategy, strategy.Option, strategy.Option) {
	t.Helper()
	c := cluster.NVLinkTestbed(8)
	m := commBound()
	e := newEngine(t, m, c, dgc())
	e.RecordOps = false

	opts := strategy.EnumerateGPU(c)
	var compressed strategy.Option
	for _, o := range opts {
		if o.Compressed() {
			compressed = o
			break
		}
	}
	if len(compressed.Steps) == 0 {
		t.Fatal("no compressed option enumerated")
	}
	plain := strategy.NoCompression(c)
	s := strategy.Uniform(len(m.Tensors), plain)
	if err := e.Prepare(s); err != nil {
		t.Fatal(err)
	}
	return e, s, plain, compressed
}

func TestRunNoRecordDoesNotAllocate(t *testing.T) {
	e, _, _, _ := hotLoopEngine(t)
	// Warm the scratch state once.
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Run with RecordOps off allocated %.1f/op, want 0", allocs)
	}
}

func TestProbeLoopDoesNotAllocate(t *testing.T) {
	e, _, plain, compressed := hotLoopEngine(t)
	// Warm: first SetOption per (tensor, option shape) may grow the
	// owned chain array to the larger option's length.
	for _, opt := range []strategy.Option{compressed, plain} {
		if err := e.SetOption(0, opt); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	opts := [2]strategy.Option{compressed, plain}
	round := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.SetOption(0, opts[round&1]); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		round++
	})
	if allocs != 0 {
		t.Fatalf("SetOption+Run probe loop allocated %.1f/op, want 0", allocs)
	}
}

// TestScratchResultAliases documents the Run contract with RecordOps
// off: the returned Result is engine scratch, overwritten by the next
// evaluation.
func TestScratchResultAliases(t *testing.T) {
	e, _, _, compressed := hotLoopEngine(t)
	r1, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	first := r1.Iter
	if err := e.SetOption(0, compressed); err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("Run with RecordOps off should return the engine's scratch Result both times")
	}
	if first == r1.Iter {
		t.Skip("option swap did not change F(S); aliasing unobservable")
	}
}

// TestCloneCopyOnWrite pins the Clone contract: after a clone, writes on
// either engine must not be visible to the other, and both engines must
// keep producing correct evaluations. Run under -race this also guards
// the concurrent-evaluation pattern of the selector's engine pool.
func TestCloneCopyOnWrite(t *testing.T) {
	e, s, plain, compressed := hotLoopEngine(t)

	base, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseIter := base.Iter

	clone := e.Clone()

	// Writes on the clone: compress every tensor there.
	for i := range s.PerTensor {
		if err := clone.SetOption(i, compressed); err != nil {
			t.Fatal(err)
		}
	}
	// The original still evaluates the uncompressed strategy.
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Iter != baseIter {
		t.Fatalf("clone's writes leaked into the original: iter %v, want %v", r.Iter, baseIter)
	}

	// Writes on the original must not leak into the clone either: the
	// clone's compressed evaluation must match a fresh engine prepared
	// with the same compressed strategy.
	if err := e.SetOption(0, compressed); err != nil {
		t.Fatal(err)
	}
	if err := e.SetOption(0, plain); err != nil {
		t.Fatal(err)
	}
	cr, err := clone.Run()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(e.M, e.C, e.Cost)
	fresh.RecordOps = false
	all := strategy.Uniform(len(s.PerTensor), compressed)
	fr, err := fresh.Evaluate(all)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Iter != fr.Iter {
		t.Fatalf("clone evaluation diverged from fresh engine: %v vs %v", cr.Iter, fr.Iter)
	}

	// Concurrent evaluation after cloning (the pool pattern): -race
	// verifies the chains are never written while shared.
	done := make(chan error, 2)
	go func() { _, err := e.Run(); done <- err }()
	go func() { _, err := clone.Run(); done <- err }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestClonePrepareDoesNotAliasOriginal covers the clone-then-Prepare
// path: Prepare rebuilds every chain via SetOption, each of which must
// un-share before writing.
func TestClonePrepareDoesNotAliasOriginal(t *testing.T) {
	e, s, _, compressed := hotLoopEngine(t)
	base, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseIter := base.Iter

	clone := e.Clone()
	all := strategy.Uniform(len(s.PerTensor), compressed)
	if err := clone.Prepare(all); err != nil {
		t.Fatal(err)
	}
	r, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Iter != baseIter {
		t.Fatalf("clone.Prepare mutated the original's chains: iter %v, want %v", r.Iter, baseIter)
	}
}

// BenchmarkProbeLoop measures the selection hot path — SetOption + Run
// with RecordOps off — and is gated by espresso-benchgate: its baseline
// records 0 allocs/op, so any allocation on this path fails CI.
func BenchmarkProbeLoop(b *testing.B) {
	e, _, plain, compressed := hotLoopEngine(b)
	for _, opt := range []strategy.Option{compressed, plain} {
		if err := e.SetOption(0, opt); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	opts := [2]strategy.Option{compressed, plain}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.SetOption(0, opts[i&1]); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunNoRecord measures a bare evaluation on a prepared engine.
func BenchmarkRunNoRecord(b *testing.B) {
	e, _, _, _ := hotLoopEngine(b)
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
