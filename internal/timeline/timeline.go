// Package timeline derives the training timeline of a DDL iteration under
// a compression strategy: the per-tensor backward computation,
// compression, staging, and communication operations, their placement on
// shared resources, and the resulting iteration time F(S) (§4.3–4.4).
//
// The engine simulates one representative GPU lane plus the shared
// per-machine resources: the GPU compute stream (backward kernels and GPU
// compression contend there), the host compression pool, the PCIe staging
// link, the intra-machine interconnect, and the machine NIC. Resources
// serve ready work in tensor-priority order without idling, the way
// WFBP frameworks with priority scheduling behave.
package timeline

import (
	"fmt"
	"time"

	"espresso/internal/cluster"
	"espresso/internal/cost"
	"espresso/internal/model"
	"espresso/internal/sim"
	"espresso/internal/strategy"
)

// Resource identifies a shared resource lane in the timeline.
type Resource uint8

const (
	// ResGPU is the representative GPU's compute stream.
	ResGPU Resource = iota
	// ResCPU is the machine's host compression pool.
	ResCPU
	// ResStaging is the GPU<->host PCIe staging link.
	ResStaging
	// ResIntra is the intra-machine interconnect.
	ResIntra
	// ResInter is the machine's NIC.
	ResInter
	numResources
)

func (r Resource) String() string {
	switch r {
	case ResGPU:
		return "gpu"
	case ResCPU:
		return "cpu"
	case ResStaging:
		return "pcie"
	case ResIntra:
		return "intra"
	case ResInter:
		return "inter"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Op is one executed operation in a derived timeline.
type Op struct {
	// Tensor is the tensor index in backward order; Step is the option
	// step index, or -1 for the backward computation itself.
	Tensor int
	Step   int
	Res    Resource
	Span   sim.Span
}

// Result is a derived timeline.
type Result struct {
	// Makespan is the time from the start of backward propagation until
	// the last tensor finishes synchronization.
	Makespan time.Duration
	// Iter is the iteration time: forward pass plus Makespan.
	Iter time.Duration
	// Ops lists every operation, ordered by completion.
	Ops []Op
	// ResBusy is the total service time per resource.
	ResBusy [numResources]time.Duration
}

// CommOps returns the communication operations on res in start order
// (single-server resources complete in start order).
func (r *Result) CommOps(res Resource) []Op {
	var ops []Op
	for _, op := range r.Ops {
		if op.Res == res && op.Step >= 0 {
			ops = append(ops, op)
		}
	}
	return ops
}

// BottleneckComm returns the network resource with the most service time
// — the "communication timeline" of the paper's figures. Hierarchical
// jobs are usually NIC-bound; single-machine jobs are interconnect-bound.
func (r *Result) BottleneckComm() Resource {
	if r.ResBusy[ResInter] >= r.ResBusy[ResIntra] {
		return ResInter
	}
	return ResIntra
}

// TensorsBeforeBubbles implements the detection step of Property #1: a
// tensor is "communicated before a bubble" when its communication on the
// bottleneck network resource is followed by an idle gap because the next
// tensor was not ready — shrinking this tensor's communication would only
// widen the gap, never shift later communications earlier.
func (r *Result) TensorsBeforeBubbles() map[int]bool {
	out := make(map[int]bool)
	ops := r.CommOps(r.BottleneckComm())
	for i := 0; i+1 < len(ops); i++ {
		// The gap is a bubble only if the successor was genuinely not
		// ready (rather than scheduled late).
		if ops[i+1].Span.Start > ops[i].Span.End && ops[i+1].Span.Ready > ops[i].Span.End {
			out[ops[i].Tensor] = true
		}
	}
	return out
}

// Gantt renders a human-readable timeline (for cmd/espresso-sim and the
// didactic examples).
func (r *Result) Gantt() string {
	out := ""
	for _, op := range r.Ops {
		kind := "backward"
		if op.Step >= 0 {
			kind = fmt.Sprintf("step%-2d", op.Step)
		}
		out += fmt.Sprintf("%-6s T%-3d %s  [%8.3fms — %8.3fms]\n",
			op.Res, op.Tensor, kind,
			float64(op.Span.Start)/1e6, float64(op.Span.End)/1e6)
	}
	return out
}

// Engine evaluates strategies for one (model, cluster, GC) configuration.
// It is not safe for concurrent use; create one engine per goroutine.
type Engine struct {
	M    *model.Model
	C    *cluster.Cluster
	Cost *cost.Models

	// ZeroCompression makes every compression, decompression, and
	// staging operation free — the Upper Bound configuration of §5.1.
	ZeroCompression bool

	// RecordOps controls whether Evaluate keeps per-op spans. The
	// decision algorithm's inner loop disables it.
	RecordOps bool

	// ComputeScale multiplies forward and backward compute durations
	// (0 or 1 = healthy). The chaos layer sets it to model a slow
	// device; compression work is scaled separately through the cost
	// models' device scales.
	ComputeScale float64

	// commSink, when non-nil, receives the communication steps of the
	// chain being built (see CommSteps). Transient; never cloned.
	commSink *[]CommStep

	// Reused scratch state; Engine is therefore not concurrency-safe.
	chains    [][]jobSpec
	queues    [numResources][]leanJob
	busyUntil [numResources]time.Duration
	cur       [numResources]leanJob
}

// New builds an engine. The cost models must match the cluster.
func New(m *model.Model, c *cluster.Cluster, cm *cost.Models) *Engine {
	return &Engine{M: m, C: c, Cost: cm, RecordOps: true}
}

// Clone returns an independent engine for the same (model, cluster, GC)
// configuration, carrying the configuration flags and a deep copy of any
// prepared per-tensor pipelines. The model, cluster, and cost models are
// shared read-only, so a clone may Run concurrently with the original
// and with other clones — the engine-pool pattern the parallel strategy
// search uses for independent F(S) evaluations.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		M: e.M, C: e.C, Cost: e.Cost,
		ZeroCompression: e.ZeroCompression,
		RecordOps:       e.RecordOps,
		ComputeScale:    e.ComputeScale,
	}
	if len(e.chains) > 0 {
		out.chains = make([][]jobSpec, len(e.chains))
		for i, ch := range e.chains {
			out.chains[i] = append([]jobSpec(nil), ch...)
		}
	}
	return out
}

// prio orders jobs on shared resources: all work of tensor i precedes
// work of tensor j>i, and within a tensor the backward kernel precedes
// pipeline steps. stepSlot 0 is backward, 1+s is option step s.
func prio(tensor, stepSlot int) int64 { return int64(tensor)<<8 | int64(stepSlot) }

// jobSpec is one precomputed unit of work in a tensor's pipeline.
type jobSpec struct {
	res  Resource
	dur  time.Duration
	step int // option step index (several jobs may share a step)
}

// Evaluate derives the timeline of one iteration under s.
//
// The scheduler is a lean discrete-event loop specialized to this model:
// five single-server resources, each serving ready jobs in priority
// order without idling (work-conserving, non-preemptive). The loop
// allocates almost nothing, because the decision algorithm calls it tens
// of thousands of times per strategy selection.
func (e *Engine) Evaluate(s *strategy.Strategy) (*Result, error) {
	if err := e.Prepare(s); err != nil {
		return nil, err
	}
	return e.Run()
}

// Prepare loads a strategy, computing every tensor's pipeline. After
// Prepare, individual tensors can be re-assigned with SetOption and the
// loaded configuration evaluated with Run — the incremental pattern of
// GetBestOption (Algorithm 1), which swaps one tensor's option at a time.
func (e *Engine) Prepare(s *strategy.Strategy) error {
	if len(s.PerTensor) != len(e.M.Tensors) {
		return fmt.Errorf("timeline: strategy covers %d tensors, model has %d",
			len(s.PerTensor), len(e.M.Tensors))
	}
	total := len(e.M.Tensors)
	if cap(e.chains) < total {
		chains := make([][]jobSpec, total)
		copy(chains, e.chains)
		e.chains = chains
	}
	e.chains = e.chains[:total]
	for i, opt := range s.PerTensor {
		if err := e.SetOption(i, opt); err != nil {
			return err
		}
	}
	return nil
}

// SetOption replaces tensor i's pipeline with opt. Prepare must have run.
func (e *Engine) SetOption(i int, opt strategy.Option) error {
	chain, err := e.chainInto(i, opt, e.chains[i][:0])
	if err != nil {
		return err
	}
	e.chains[i] = chain
	return nil
}

// Run evaluates the currently loaded configuration.
func (e *Engine) Run() (*Result, error) {
	total := len(e.M.Tensors)

	res := &Result{}
	for r := range e.queues {
		e.queues[r] = e.queues[r][:0]
		e.busyUntil[r] = -1
		e.cur[r] = leanJob{}
	}

	// Backward kernels for every tensor are ready at t=0; GPU priority
	// order runs them in index order, with GPU compression of earlier
	// tensors interleaving ahead of later kernels (Reason #1).
	for i := range e.M.Tensors {
		e.push(ResGPU, leanJob{prio: prio(i, 0), tensor: int32(i), job: -1, ready: 0,
			dur: e.scaleCompute(e.M.Tensors[i].Compute)})
	}

	var now, finish time.Duration
	done := 0
	dispatch := func() {
		for r := range e.queues {
			if e.busyUntil[r] < 0 && len(e.queues[r]) > 0 {
				j := e.pop(Resource(r))
				j.start = now
				e.cur[r] = j
				e.busyUntil[r] = now + j.dur
			}
		}
	}
	dispatch()
	for {
		// Find the earliest completion.
		next := time.Duration(-1)
		for r := range e.busyUntil {
			if e.busyUntil[r] >= 0 && (next < 0 || e.busyUntil[r] < next) {
				next = e.busyUntil[r]
			}
		}
		if next < 0 {
			break
		}
		now = next
		// Complete everything finishing at this instant before
		// dispatching, so same-instant arrivals compete on priority.
		for r := range e.busyUntil {
			if e.busyUntil[r] != now {
				continue
			}
			j := e.cur[r]
			e.busyUntil[r] = -1
			if e.RecordOps {
				res.Ops = append(res.Ops, Op{
					Tensor: int(j.tensor), Step: jobStep(j),
					Res:  Resource(r),
					Span: sim.Span{Ready: j.ready, Start: j.start, End: now},
				})
			}
			res.ResBusy[r] += j.dur
			chain := e.chains[j.tensor]
			nextJob := int(j.job) + 1
			if nextJob >= len(chain) {
				done++
				if now > finish {
					finish = now
				}
				continue
			}
			spec := chain[nextJob]
			e.push(spec.res, leanJob{
				prio: prio(int(j.tensor), 1+spec.step), tensor: j.tensor,
				job: int32(nextJob), step: int32(spec.step), ready: now, dur: spec.dur,
			})
		}
		dispatch()
	}
	if done != total {
		return nil, fmt.Errorf("timeline: %d of %d tensors completed (pipeline deadlock)", done, total)
	}
	res.Makespan = finish
	res.Iter = e.scaleCompute(e.M.Forward) + finish
	return res, nil
}

// scaleCompute applies the slow-device multiplier to a compute duration.
func (e *Engine) scaleCompute(d time.Duration) time.Duration {
	if e.ComputeScale <= 0 || e.ComputeScale == 1 {
		return d
	}
	return time.Duration(float64(d) * e.ComputeScale)
}

// leanJob is an in-flight or queued unit of work.
type leanJob struct {
	prio   int64
	tensor int32
	job    int32 // index into the tensor's chain; -1 for the backward kernel
	step   int32 // option step for recording
	ready  time.Duration
	start  time.Duration
	dur    time.Duration
}

func jobStep(j leanJob) int {
	if j.job < 0 {
		return -1
	}
	return int(j.step)
}

// push adds a job to a resource's ready heap.
func (e *Engine) push(r Resource, j leanJob) {
	q := append(e.queues[r], j)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].prio <= q[i].prio {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	e.queues[r] = q
}

// pop removes the lowest-priority-value ready job.
func (e *Engine) pop(r Resource) leanJob {
	q := e.queues[r]
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < n && q[l].prio < q[small].prio {
			small = l
		}
		if rr < n && q[rr].prio < q[small].prio {
			small = rr
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	e.queues[r] = q
	return top
}

// IterTime is Evaluate without op recording, for the decision loop.
func (e *Engine) IterTime(s *strategy.Strategy) (time.Duration, error) {
	saved := e.RecordOps
	e.RecordOps = false
	r, err := e.Evaluate(s)
	e.RecordOps = saved
	if err != nil {
		return 0, err
	}
	return r.Iter, nil
}

// MustIterTime panics on error; for callers holding validated strategies.
func (e *Engine) MustIterTime(s *strategy.Strategy) time.Duration {
	d, err := e.IterTime(s)
	if err != nil {
		panic(err)
	}
	return d
}
