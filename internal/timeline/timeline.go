// Package timeline derives the training timeline of a DDL iteration under
// a compression strategy: the per-tensor backward computation,
// compression, staging, and communication operations, their placement on
// shared resources, and the resulting iteration time F(S) (§4.3–4.4).
//
// The engine simulates one representative GPU lane plus the shared
// per-machine resources: the GPU compute stream (backward kernels and GPU
// compression contend there), the host compression pool, the PCIe staging
// link, the intra-machine interconnect, and the machine NIC. Resources
// serve ready work in tensor-priority order without idling, the way
// WFBP frameworks with priority scheduling behave.
package timeline

import (
	"fmt"
	"math/bits"
	"time"

	"espresso/internal/cluster"
	"espresso/internal/cost"
	"espresso/internal/model"
	"espresso/internal/sim"
	"espresso/internal/strategy"
)

// Resource identifies a shared resource lane in the timeline.
type Resource uint8

const (
	// ResGPU is the representative GPU's compute stream.
	ResGPU Resource = iota
	// ResCPU is the machine's host compression pool.
	ResCPU
	// ResStaging is the GPU<->host PCIe staging link.
	ResStaging
	// ResIntra is the intra-machine interconnect.
	ResIntra
	// ResInter is the machine's NIC.
	ResInter
	numResources
)

func (r Resource) String() string {
	switch r {
	case ResGPU:
		return "gpu"
	case ResCPU:
		return "cpu"
	case ResStaging:
		return "pcie"
	case ResIntra:
		return "intra"
	case ResInter:
		return "inter"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Op is one executed operation in a derived timeline.
type Op struct {
	// Tensor is the tensor index in backward order; Step is the option
	// step index, or -1 for the backward computation itself.
	Tensor int
	Step   int
	Res    Resource
	Span   sim.Span
}

// Result is a derived timeline.
type Result struct {
	// Makespan is the time from the start of backward propagation until
	// the last tensor finishes synchronization.
	Makespan time.Duration
	// Iter is the iteration time: forward pass plus Makespan.
	Iter time.Duration
	// Ops lists every operation, ordered by completion.
	Ops []Op
	// ResBusy is the total service time per resource.
	ResBusy [numResources]time.Duration
}

// CommOps returns the communication operations on res in start order
// (single-server resources complete in start order).
func (r *Result) CommOps(res Resource) []Op {
	var ops []Op
	for _, op := range r.Ops {
		if op.Res == res && op.Step >= 0 {
			ops = append(ops, op)
		}
	}
	return ops
}

// BottleneckComm returns the network resource with the most service time
// — the "communication timeline" of the paper's figures. Hierarchical
// jobs are usually NIC-bound; single-machine jobs are interconnect-bound.
func (r *Result) BottleneckComm() Resource {
	if r.ResBusy[ResInter] >= r.ResBusy[ResIntra] {
		return ResInter
	}
	return ResIntra
}

// TensorsBeforeBubbles implements the detection step of Property #1: a
// tensor is "communicated before a bubble" when its communication on the
// bottleneck network resource is followed by an idle gap because the next
// tensor was not ready — shrinking this tensor's communication would only
// widen the gap, never shift later communications earlier.
func (r *Result) TensorsBeforeBubbles() map[int]bool {
	out := make(map[int]bool)
	for _, t := range r.AppendBubbleTensors(r.BottleneckComm(), nil) {
		out[t] = true
	}
	return out
}

// AppendBubbleTensors appends to dst the tensors communicated before a
// bubble on res and returns the extended slice — TensorsBeforeBubbles
// without the map and intermediate op-slice allocations, for the greedy
// sweep's per-improvement bubble analysis. A tensor with several bubble-
// preceding communications appears once per bubble; callers dedupe.
func (r *Result) AppendBubbleTensors(res Resource, dst []int) []int {
	// Ops are ordered by completion, and a single-server resource
	// completes in start order, so streaming the resource's comm ops
	// pairs each one with its successor exactly as CommOps would.
	have := false
	var prev Op
	for _, op := range r.Ops {
		if op.Res != res || op.Step < 0 {
			continue
		}
		// The gap is a bubble only if the successor was genuinely not
		// ready (rather than scheduled late).
		if have && op.Span.Start > prev.Span.End && op.Span.Ready > prev.Span.End {
			dst = append(dst, prev.Tensor)
		}
		prev, have = op, true
	}
	return dst
}

// Gantt renders a human-readable timeline (for cmd/espresso-sim and the
// didactic examples).
func (r *Result) Gantt() string {
	out := ""
	for _, op := range r.Ops {
		kind := "backward"
		if op.Step >= 0 {
			kind = fmt.Sprintf("step%-2d", op.Step)
		}
		out += fmt.Sprintf("%-6s T%-3d %s  [%8.3fms — %8.3fms]\n",
			op.Res, op.Tensor, kind,
			float64(op.Span.Start)/1e6, float64(op.Span.End)/1e6)
	}
	return out
}

// Engine evaluates strategies for one (model, cluster, GC) configuration.
// It is not safe for concurrent use; create one engine per goroutine.
type Engine struct {
	M    *model.Model
	C    *cluster.Cluster
	Cost *cost.Models

	// ZeroCompression makes every compression, decompression, and
	// staging operation free — the Upper Bound configuration of §5.1.
	ZeroCompression bool

	// RecordOps controls whether Evaluate keeps per-op spans. The
	// decision algorithm's inner loop disables it.
	RecordOps bool

	// ComputeScale multiplies forward and backward compute durations
	// (0 or 1 = healthy). The chaos layer sets it to model a slow
	// device; compression work is scaled separately through the cost
	// models' device scales.
	ComputeScale float64

	// commSink, when non-nil, receives the communication steps of the
	// chain being built (see CommSteps). Transient; never cloned.
	commSink *[]CommStep

	// Reused scratch state; Engine is therefore not concurrency-safe.
	//
	// chains holds the per-tensor job pipelines. Every chain array is
	// immutable once built: it is owned by the chain memo and only ever
	// pointed at, never rewritten in place, so Clone can share the whole
	// table and clones can Run concurrently with the original.
	chains    [][]jobSpec
	queues    [numResources]jobQueue
	busyUntil [numResources]time.Duration
	cur       [numResources]leanJob

	// chainMemo caches derived chains by (tensor bytes, option identity):
	// chains depend on nothing else for a fixed engine configuration, and
	// the greedy sweep probes the same few dozen candidate options across
	// every tensor, so after warm-up SetOption is a map hit plus a copy
	// instead of a full cost-model derivation. Option identity is the
	// Steps backing array, which assumes options are immutable once built
	// — the contract the strategy package's constructors already follow.
	// Never shared: clones start with a nil memo, so concurrent engines
	// never race on it.
	chainMemo map[chainMemoKey][]jobSpec

	// resScratch is the Result Run reuses when RecordOps is off — the
	// decision algorithm's inner loop runs tens of thousands of probes
	// per selection and must not allocate per probe.
	resScratch Result
	// jobScratch backs ChainKey/CommTime/CompTime chain derivations.
	jobScratch []jobSpec

	// Observe's span-name caches, keyed by content (tensor, step, and
	// the step's value), so they never need invalidation when the
	// observed strategy changes.
	bwNames   []string
	stepNames map[stepNameKey]string
}

// New builds an engine. The cost models must match the cluster.
func New(m *model.Model, c *cluster.Cluster, cm *cost.Models) *Engine {
	n := len(m.Tensors)
	return &Engine{
		M: m, C: c, Cost: cm, RecordOps: true,
		// Pre-size the chain table from the model once: strategies always
		// cover exactly the model's tensors, so Prepare never has to grow
		// the outer array again.
		chains: make([][]jobSpec, 0, n),
	}
}

// Clone returns an independent engine for the same (model, cluster, GC)
// configuration, carrying the configuration flags and the prepared
// per-tensor pipelines. Chain arrays are immutable (SetOption only ever
// repoints a tensor's entry at a memoized chain), so the clone shares
// them outright and neither engine can observe the other's writes. The
// model, cluster, and cost models are shared read-only too, so a clone
// may Run concurrently with the original and with other clones — the
// engine-pool pattern the parallel strategy search uses for independent
// F(S) evaluations. The chain memo itself is not shared: each clone
// rebuilds its own, keeping engines race-free without locks.
func (e *Engine) Clone() *Engine {
	out := &Engine{
		M: e.M, C: e.C, Cost: e.Cost,
		ZeroCompression: e.ZeroCompression,
		RecordOps:       e.RecordOps,
		ComputeScale:    e.ComputeScale,
	}
	n := len(e.M.Tensors)
	if len(e.chains) > 0 {
		out.chains = make([][]jobSpec, len(e.chains), n)
		copy(out.chains, e.chains)
	} else {
		out.chains = make([][]jobSpec, 0, n)
	}
	return out
}

// jobPrio packs a job's identity into one orderable word. The high bits
// carry the schedule priority — all work of tensor i precedes work of
// tensor j>i, and within a tensor the backward kernel (stepSlot 0)
// precedes option steps (stepSlot 1+s) — while the low byte carries the
// chain index (+1, so the backward kernel's -1 encodes as 0) purely for
// the completion path to recover. The chain index can only break ties
// between jobs with equal (tensor, stepSlot), which never share a queue
// (a step's jobs land on distinct resources), so heap order — and the
// simulated schedule — is exactly that of the unpacked priority.
func jobPrio(tensor, stepSlot, job int) int64 {
	return int64(tensor)<<24 | int64(stepSlot)<<8 | int64(job+1)
}

func jobTensor(p int64) int32 { return int32(p >> 24) }
func jobIndex(p int64) int    { return int(p&0xff) - 1 }

// jobStep recovers the option step index (-1 for the backward kernel).
func jobStep(p int64) int { return int(p>>8)&0xffff - 1 }

// jobSpec is one precomputed unit of work in a tensor's pipeline.
type jobSpec struct {
	res  Resource
	dur  time.Duration
	step int // option step index (several jobs may share a step)
}

// Evaluate derives the timeline of one iteration under s.
//
// The scheduler is a lean discrete-event loop specialized to this model:
// five single-server resources, each serving ready jobs in priority
// order without idling (work-conserving, non-preemptive). The loop
// allocates almost nothing, because the decision algorithm calls it tens
// of thousands of times per strategy selection.
func (e *Engine) Evaluate(s *strategy.Strategy) (*Result, error) {
	if err := e.Prepare(s); err != nil {
		return nil, err
	}
	return e.Run()
}

// Prepare loads a strategy, computing every tensor's pipeline. After
// Prepare, individual tensors can be re-assigned with SetOption and the
// loaded configuration evaluated with Run — the incremental pattern of
// GetBestOption (Algorithm 1), which swaps one tensor's option at a time.
func (e *Engine) Prepare(s *strategy.Strategy) error {
	if len(s.PerTensor) != len(e.M.Tensors) {
		return fmt.Errorf("timeline: strategy covers %d tensors, model has %d",
			len(s.PerTensor), len(e.M.Tensors))
	}
	total := len(e.M.Tensors)
	// Grow the chain table within capacity when possible; New pre-sizes
	// it from the model, so the growth path is normally never taken.
	if cap(e.chains) >= total {
		e.chains = e.chains[:total]
	} else {
		grown := make([][]jobSpec, total)
		copy(grown, e.chains[:cap(e.chains)])
		e.chains = grown
	}
	for i, opt := range s.PerTensor {
		if err := e.SetOption(i, opt); err != nil {
			return err
		}
	}
	return nil
}

// chainMemoKey identifies a derived chain: tensor size plus the option's
// Steps backing array (options are immutable once built, so the array
// pointer plus length is the option's identity). ZeroCompression is part
// of the key because it changes every chain and may be toggled on a
// live engine (the §5.1 Upper Bound path).
type chainMemoKey struct {
	bytes int64
	step0 *strategy.Step
	n     int
	zc    bool
}

// SetOption replaces tensor i's pipeline with opt. Prepare must have run.
// The first assignment of each (tensor size, option) pair derives the
// chain and memoizes it; every later assignment — the steady state of
// the greedy sweep, which swaps the same few candidate options across
// tensors tens of thousands of times — repoints the tensor's entry at
// the memoized array without deriving or copying anything. opt's Steps
// must not be mutated afterwards: chains are cached by the Steps
// array's identity, and the cached arrays are shared (immutably) with
// clones of this engine.
func (e *Engine) SetOption(i int, opt strategy.Option) error {
	chain, err := e.memoChain(i, opt)
	if err != nil {
		return err
	}
	e.chains[i] = chain
	return nil
}

// memoChain returns the immutable memoized chain for (tensor i's size,
// opt), deriving and caching it on first use. AppendChainSig shares
// this cache, so the candidate-dedup pass that opens a sweep also warms
// the memo for the probe loop that follows.
func (e *Engine) memoChain(i int, opt strategy.Option) ([]jobSpec, error) {
	key := chainMemoKey{bytes: e.M.Tensors[i].Bytes(), n: len(opt.Steps), zc: e.ZeroCompression}
	if key.n > 0 {
		key.step0 = &opt.Steps[0]
	}
	if memo, ok := e.chainMemo[key]; ok {
		return memo, nil
	}
	// A step expands to at most two jobs (CPU compression adds a staging
	// hop), so this capacity always holds the full chain in one array.
	chain, err := e.chainInto(i, opt, make([]jobSpec, 0, 2*len(opt.Steps)))
	if err != nil {
		return nil, err
	}
	// jobPrio packs the chain index into 8 bits and the step slot into 16;
	// stepSlot <= len(chain), so one guard covers both fields.
	if len(chain) > 0xfe {
		return nil, fmt.Errorf("timeline: tensor %d chain of %d jobs exceeds job-packing width", i, len(chain))
	}
	if e.chainMemo == nil {
		e.chainMemo = make(map[chainMemoKey][]jobSpec)
	}
	e.chainMemo[key] = chain
	return chain, nil
}

// Run evaluates the currently loaded configuration.
//
// With RecordOps off — the decision loop's configuration — the returned
// Result is the engine's own reusable scratch: it is valid until the next
// Run/RunInto on this engine, which keeps the probe loop allocation-free.
// Callers that need the Result to outlive the next evaluation must copy
// it (or run with RecordOps on, which returns a fresh Result).
func (e *Engine) Run() (*Result, error) {
	if !e.RecordOps {
		if err := e.RunInto(&e.resScratch); err != nil {
			return nil, err
		}
		return &e.resScratch, nil
	}
	res := &Result{}
	// Pre-size the op log to its exact final length: one op per chain
	// job plus one backward kernel per tensor.
	ops := len(e.M.Tensors)
	for _, ch := range e.chains {
		ops += len(ch)
	}
	res.Ops = make([]Op, 0, ops)
	if err := e.RunInto(res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run evaluating into a caller-owned Result, reusing its Ops
// backing array — the pooled-scratch entry point for callers that
// evaluate in a loop (the bubble-analysis pass of the greedy sweep).
func (e *Engine) RunInto(res *Result) error {
	total := len(e.M.Tensors)

	res.Makespan = 0
	res.Iter = 0
	res.Ops = res.Ops[:0]
	res.ResBusy = [numResources]time.Duration{}
	for r := range e.queues {
		e.queues[r].n = 0
		e.busyUntil[r] = -1
		e.cur[r] = leanJob{}
	}

	// Backward kernels for every tensor are ready at t=0; GPU priority
	// order runs them in index order, with GPU compression of earlier
	// tensors interleaving ahead of later kernels (Reason #1).
	for i := range e.M.Tensors {
		e.push(ResGPU, leanJob{prio: jobPrio(i, 0, -1), ready: 0,
			dur: e.scaleCompute(e.M.Tensors[i].Compute)})
	}

	var now, finish time.Duration
	done := 0
	// dispatch checks only the resources in mask — a resource's
	// (idle, queue-nonempty) state changes solely when it completes a
	// job or receives a push, and the event loop marks exactly those
	// dirty, so every idle resource outside the mask is known to have an
	// empty queue. Ascending resource order matches a full scan.
	dispatch := func(mask uint32) {
		for mask != 0 {
			r := bits.TrailingZeros32(mask)
			mask &^= 1 << r
			if e.busyUntil[r] < 0 && e.queues[r].n > 0 {
				j := e.pop(Resource(r))
				j.start = now
				e.cur[r] = j
				e.busyUntil[r] = now + j.dur
			}
		}
	}
	dispatch(1<<numResources - 1)
	for {
		// Find the earliest completion.
		next := time.Duration(-1)
		for r := range e.busyUntil {
			if e.busyUntil[r] >= 0 && (next < 0 || e.busyUntil[r] < next) {
				next = e.busyUntil[r]
			}
		}
		if next < 0 {
			break
		}
		now = next
		// Complete everything finishing at this instant before
		// dispatching, so same-instant arrivals compete on priority.
		var dirty uint32
		for r := range e.busyUntil {
			if e.busyUntil[r] != now {
				continue
			}
			j := e.cur[r]
			e.busyUntil[r] = -1
			dirty |= 1 << r
			tensor := jobTensor(j.prio)
			if e.RecordOps {
				res.Ops = append(res.Ops, Op{
					Tensor: int(tensor), Step: jobStep(j.prio),
					Res:  Resource(r),
					Span: sim.Span{Ready: j.ready, Start: j.start, End: now},
				})
			}
			res.ResBusy[r] += j.dur
			chain := e.chains[tensor]
			nextJob := jobIndex(j.prio) + 1
			if nextJob >= len(chain) {
				done++
				if now > finish {
					finish = now
				}
				continue
			}
			spec := chain[nextJob]
			e.push(spec.res, leanJob{
				prio:  jobPrio(int(tensor), 1+spec.step, nextJob),
				ready: now, dur: spec.dur,
			})
			dirty |= 1 << uint(spec.res)
		}
		dispatch(dirty)
	}
	if done != total {
		return fmt.Errorf("timeline: %d of %d tensors completed (pipeline deadlock)", done, total)
	}
	res.Makespan = finish
	res.Iter = e.scaleCompute(e.M.Forward) + finish
	return nil
}

// scaleCompute applies the slow-device multiplier to a compute duration.
func (e *Engine) scaleCompute(d time.Duration) time.Duration {
	if e.ComputeScale <= 0 || e.ComputeScale == 1 {
		return d
	}
	return time.Duration(float64(d) * e.ComputeScale)
}

// leanJob is an in-flight or queued unit of work. Its identity lives
// packed inside prio (see jobPrio); keeping the struct at 32 bytes
// instead of 48 cuts the copy traffic of every heap sift and dispatch
// in the event loop.
type leanJob struct {
	prio  int64
	ready time.Duration
	start time.Duration
	dur   time.Duration
}

// jobQueue is a binary min-heap of ready jobs with an explicit length,
// so push/pop mutate elements and an int rather than re-storing the
// slice header into the Engine — a pointer store that would fire a GC
// write barrier on every heap operation of the event loop. The header
// is only written when the buffer grows, which pre-sizing amortizes to
// nothing.
type jobQueue struct {
	buf []leanJob
	n   int
}

// push adds a job to a resource's ready heap. The sift-up moves parents
// down into a hole instead of swapping, writing the new job once at its
// final slot. Priorities are unique within a queue (a tensor never has
// two jobs of the same step slot on one resource), so heap order — and
// therefore the simulated schedule — is deterministic.
func (e *Engine) push(r Resource, j leanJob) {
	q := &e.queues[r]
	if q.n == len(q.buf) {
		q.buf = append(q.buf, j)
	}
	b := q.buf
	i := q.n
	q.n++
	for i > 0 {
		parent := (i - 1) / 2
		if b[parent].prio <= j.prio {
			break
		}
		b[i] = b[parent]
		i = parent
	}
	b[i] = j
}

// pop removes the lowest-priority-value ready job.
func (e *Engine) pop(r Resource) leanJob {
	q := &e.queues[r]
	b := q.buf
	top := b[0]
	n := q.n - 1
	q.n = n
	j := b[n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if rr := l + 1; rr < n && b[rr].prio < b[l].prio {
			l = rr
		}
		if b[l].prio >= j.prio {
			break
		}
		b[i] = b[l]
		i = l
	}
	b[i] = j
	return top
}

// IterTime is Evaluate without op recording, for the decision loop.
func (e *Engine) IterTime(s *strategy.Strategy) (time.Duration, error) {
	saved := e.RecordOps
	e.RecordOps = false
	r, err := e.Evaluate(s)
	e.RecordOps = saved
	if err != nil {
		return 0, err
	}
	return r.Iter, nil
}

// MustIterTime panics on error; for callers holding validated strategies.
func (e *Engine) MustIterTime(s *strategy.Strategy) time.Duration {
	d, err := e.IterTime(s)
	if err != nil {
		panic(err)
	}
	return d
}
