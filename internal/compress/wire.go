package compress

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// payloadHeaderBytes is the fixed wire overhead of every payload:
// algo(1) + flags(1) + n(4) + base(4) + counts(4) + crc(4).
const payloadHeaderBytes = 18

// crcOffset locates the IEEE CRC32 field within the header. The checksum
// covers every encoded byte except the field itself.
const crcOffset = 14

// CorruptError reports an encoded payload that failed integrity checks —
// too short for its header, truncated against its declared counts, or a
// checksum mismatch. It models a corrupted wire transmission, which is
// retryable: the receiver discards the payload and the sender
// retransmits (see the DDL executor's wire fault handling).
type CorruptError struct {
	// Reason describes the failed check.
	Reason string
}

func (e *CorruptError) Error() string { return "compress: corrupt payload: " + e.Reason }

// checksum computes the payload CRC over buf with the crc field skipped.
func checksum(buf []byte) uint32 {
	c := crc32.ChecksumIEEE(buf[:crcOffset])
	return crc32.Update(c, crc32.IEEETable, buf[crcOffset+4:])
}

// Encode serializes p to the deterministic little-endian wire format the
// communication library exchanges. The layout is:
//
//	byte  0     algorithm ID
//	byte  1     flags (bit0: has scale)
//	bytes 2-5   N (uint32)
//	bytes 6-9   Base (uint32)
//	bytes 10-13 count of indices/values OR bitmap length (uint32)
//	bytes 14-17 IEEE CRC32 of all other bytes
//	[scale float32]
//	[indices int32...][values float32...] | [bitmap...]
func Encode(p *Payload) []byte {
	hasScale := p.Algo == EFSignSGD || p.Algo == QSGD || p.Algo == TernGrad
	size := payloadHeaderBytes
	if hasScale {
		size += 4
	}
	if len(p.Bits) > 0 || !sparseLike(p.Algo) && p.Algo != FP32 {
		size += len(p.Bits)
	} else if p.Algo == FP32 {
		size += 4 * len(p.Values)
	} else {
		size += 8 * len(p.Indices)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(p.Algo), flagByte(hasScale))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.N))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Base))
	switch {
	case p.Algo == FP32:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Values)))
		buf = append(buf, 0, 0, 0, 0) // crc slot, filled below
		for _, v := range p.Values {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	case sparseLike(p.Algo):
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Indices)))
		buf = append(buf, 0, 0, 0, 0)
		for _, i := range p.Indices {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
		}
		for _, v := range p.Values {
			buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
		}
	default:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Bits)))
		buf = append(buf, 0, 0, 0, 0)
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(p.Scale))
		buf = append(buf, p.Bits...)
	}
	binary.LittleEndian.PutUint32(buf[crcOffset:], checksum(buf))
	return buf
}

// Decode parses a payload produced by Encode. Any integrity failure —
// truncation or checksum mismatch — returns a *CorruptError; the
// checksum is verified before the body is parsed, so a corrupted count
// field cannot drive a huge allocation.
func Decode(buf []byte) (*Payload, error) {
	if len(buf) < payloadHeaderBytes {
		return nil, &CorruptError{Reason: fmt.Sprintf("%d bytes shorter than %d-byte header", len(buf), payloadHeaderBytes)}
	}
	if got, want := binary.LittleEndian.Uint32(buf[crcOffset:]), checksum(buf); got != want {
		return nil, &CorruptError{Reason: fmt.Sprintf("checksum %08x, want %08x", got, want)}
	}
	p := &Payload{
		Algo: ID(buf[0]),
		N:    int(binary.LittleEndian.Uint32(buf[2:])),
		Base: int(binary.LittleEndian.Uint32(buf[6:])),
	}
	count := int(binary.LittleEndian.Uint32(buf[10:]))
	rest := buf[payloadHeaderBytes:]
	switch {
	case p.Algo == FP32:
		if len(rest) < 4*count {
			return nil, &CorruptError{Reason: fmt.Sprintf("fp32 payload truncated: %d bytes for %d values", len(rest), count)}
		}
		p.Values = make([]float32, count)
		for i := range p.Values {
			p.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(rest[4*i:]))
		}
	case sparseLike(p.Algo):
		if len(rest) < 8*count {
			return nil, &CorruptError{Reason: fmt.Sprintf("sparse payload truncated: %d bytes for %d pairs", len(rest), count)}
		}
		p.Indices = make([]int32, count)
		p.Values = make([]float32, count)
		for i := range p.Indices {
			p.Indices[i] = int32(binary.LittleEndian.Uint32(rest[4*i:]))
		}
		vals := rest[4*count:]
		for i := range p.Values {
			p.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(vals[4*i:]))
		}
	default:
		if len(rest) < 4+count {
			return nil, &CorruptError{Reason: fmt.Sprintf("quantized payload truncated: %d bytes for %d bitmap bytes", len(rest), count)}
		}
		p.Scale = math.Float32frombits(binary.LittleEndian.Uint32(rest))
		p.Bits = make([]byte, count)
		copy(p.Bits, rest[4:4+count])
	}
	return p, nil
}

func sparseLike(id ID) bool { return id == RandomK || id == DGC || id == TopK }

func flagByte(hasScale bool) byte {
	if hasScale {
		return 1
	}
	return 0
}

// Slice extracts the sub-payload covering dense elements [lo, hi) of the
// region p describes (offsets relative to p.Base). Divisible schemes use
// it to partition a compressed tensor into per-node parts (Figure 4).
// Slicing is supported for sparse payloads and the bitmap quantizers.
func Slice(p *Payload, lo, hi int) (*Payload, error) {
	if lo < 0 || hi > p.N || lo > hi {
		return nil, fmt.Errorf("compress: slice [%d,%d) outside region of %d", lo, hi, p.N)
	}
	out := &Payload{Algo: p.Algo, N: hi - lo, Base: p.Base + lo, Scale: p.Scale}
	switch {
	case p.Algo == FP32:
		out.Values = append([]float32(nil), p.Values[lo:hi]...)
	case sparseLike(p.Algo):
		for i, j := range p.Indices {
			if int(j) >= lo && int(j) < hi {
				out.Indices = append(out.Indices, j-int32(lo))
				out.Values = append(out.Values, p.Values[i])
			}
		}
	default:
		bitsPer := 1
		switch p.Algo {
		case TernGrad:
			bitsPer = 2
		case QSGD:
			return nil, fmt.Errorf("compress: QSGD payloads are sliced by recompression, not bit slicing")
		}
		out.Bits = make([]byte, (out.N*bitsPer+7)/8)
		for i := 0; i < out.N*bitsPer; i++ {
			if p.Bits[(lo*bitsPer+i)/8]&(1<<((lo*bitsPer+i)%8)) != 0 {
				out.Bits[i/8] |= 1 << (i % 8)
			}
		}
	}
	return out, nil
}

// ShardBounds splits n dense elements into parts near-equal contiguous
// ranges and returns the part boundaries (len parts+1). Every divisible
// scheme in the communication library uses the same boundaries so shards
// line up across nodes.
func ShardBounds(n, parts int) []int {
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	for i := 0; i <= parts; i++ {
		bounds[i] = i * n / parts
	}
	return bounds
}
