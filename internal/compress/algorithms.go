package compress

import (
	"fmt"
	"math"
	"sort"
)

// --- FP32 passthrough ---

type fp32 struct{ spec Spec }

func (c fp32) Spec() Spec { return c.spec }

func (c fp32) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c fp32) CompressInto(dst *Payload, x []float32, _ uint64) *Payload {
	vals := f32Buf(dst.Values, len(x))
	copy(vals, x)
	*dst = Payload{Algo: FP32, N: len(x), Values: vals}
	return dst
}

func (c fp32) Decompress(p *Payload, out []float32) error {
	if err := checkRegion(p, out, FP32); err != nil {
		return err
	}
	copy(out, p.Values)
	return nil
}

func (c fp32) WireBytes(n int) int { return payloadHeaderBytes + 4*n }

// --- RandomK sparsification ---

type randomK struct{ spec Spec }

func (c randomK) Spec() Spec { return c.spec }

// Compress keeps k elements chosen by a seeded Floyd sample, so every
// worker running with the same seed selects the same coordinates.
func (c randomK) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c randomK) CompressInto(dst *Payload, x []float32, seed uint64) *Payload {
	n := len(x)
	if n == 0 {
		*dst = Payload{Algo: RandomK}
		return dst
	}
	k := keepCount(c.spec.Ratio, n)
	rng := splitmix64(seed)
	sc := kernelPool.Get().(*kernelScratch)
	idx := floydSample(&rng, n, k, sc.resetSet(k), i32Buf(dst.Indices, k))
	kernelPool.Put(sc)
	vals := f32Buf(dst.Values, k)
	for i, j := range idx {
		vals[i] = x[j]
	}
	*dst = Payload{Algo: RandomK, N: n, Indices: idx, Values: vals}
	return dst
}

func (c randomK) Decompress(p *Payload, out []float32) error {
	return scatter(p, out, RandomK)
}

func (c randomK) WireBytes(n int) int {
	return sparseWireBytes(keepCount(c.spec.Ratio, n))
}

// floydSample draws k distinct indices from [0,n) with Robert Floyd's
// algorithm into idx (whose capacity must be at least k), returned sorted
// ascending. chosen is the caller's empty membership scratch.
func floydSample(rng *splitmix64, n, k int, chosen map[int32]struct{}, idx []int32) []int32 {
	for j := n - k; j < n; j++ {
		t := int32(rng.intn(j + 1))
		if _, dup := chosen[t]; dup {
			t = int32(j)
		}
		chosen[t] = struct{}{}
	}
	idx = idx[:0]
	for i := range chosen {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// --- DGC (sampled-threshold top-k) sparsification ---

type dgc struct{ spec Spec }

func (c dgc) Spec() Spec { return c.spec }

// Compress selects approximately ratio*n largest-magnitude elements using
// DGC's sampled-threshold procedure: estimate the magnitude threshold from
// a random sample, select everything above it, then trim or backfill to
// exactly k so the wire size stays deterministic (a requirement of §4.3).
func (c dgc) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c dgc) CompressInto(dst *Payload, x []float32, seed uint64) *Payload {
	n := len(x)
	if n == 0 {
		*dst = Payload{Algo: DGC}
		return dst
	}
	k := keepCount(c.spec.Ratio, n)
	rng := splitmix64(seed)
	sc := kernelPool.Get().(*kernelScratch)
	defer kernelPool.Put(sc)

	// Sample max(1%, 4k-capped) of the tensor to estimate the
	// threshold, as the DGC reference implementation does.
	sampleN := dgcSampleSize(n)
	sample := f32Buf(sc.sample, sampleN)
	sc.sample = sample
	for i := range sample {
		v := x[rng.intn(n)]
		if v < 0 {
			v = -v
		}
		sample[i] = v
	}
	// Threshold at the magnitude whose sample rank matches ratio.
	rank := int(float64(sampleN) * (1 - c.spec.Ratio))
	if rank < 0 {
		rank = 0
	}
	if rank >= sampleN {
		rank = sampleN - 1
	}
	sort.Slice(sample, func(a, b int) bool { return sample[a] < sample[b] })
	thresh := sample[rank]

	idx := i32Buf(dst.Indices, k)[:0]
	for i, v := range x {
		if v < 0 {
			v = -v
		}
		if v >= thresh {
			idx = append(idx, int32(i))
		}
	}
	idx = fitToK(x, idx, k, sc)
	vals := f32Buf(dst.Values, k)
	for i, j := range idx {
		vals[i] = x[j]
	}
	*dst = Payload{Algo: DGC, N: n, Indices: idx, Values: vals}
	return dst
}

func (c dgc) Decompress(p *Payload, out []float32) error {
	return scatter(p, out, DGC)
}

// dgcSampleSize is DGC's threshold-estimation budget: 1% of the tensor,
// floored at 64 samples and capped at 4096 (the reference
// implementation's cap — without it, large tensors pay O(n/100)
// sampling), clamped to the tensor size.
func dgcSampleSize(n int) int {
	s := n / 100
	if s < 64 {
		s = 64
	}
	if s > 4096 {
		s = 4096
	}
	if s > n {
		s = n
	}
	return s
}

func (c dgc) WireBytes(n int) int {
	return sparseWireBytes(keepCount(c.spec.Ratio, n))
}

// fitToK trims the selection to the k largest magnitudes if it overshot,
// or backfills with the largest remaining magnitudes if it undershot,
// returning exactly k sorted indices. sc supplies the membership and
// ordering scratch.
func fitToK(x []float32, idx []int32, k int, sc *kernelScratch) []int32 {
	if len(idx) > k {
		sort.Slice(idx, func(a, b int) bool {
			return mag(x[idx[a]]) > mag(x[idx[b]])
		})
		idx = idx[:k]
	} else if len(idx) < k {
		selected := sc.resetSet(len(idx))
		for _, i := range idx {
			selected[i] = struct{}{}
		}
		rest := sc.order[:0]
		for i := range x {
			if _, ok := selected[int32(i)]; !ok {
				rest = append(rest, int32(i))
			}
		}
		sc.order = rest
		sort.Slice(rest, func(a, b int) bool {
			return mag(x[rest[a]]) > mag(x[rest[b]])
		})
		idx = append(idx, rest[:k-len(idx)]...)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

func mag(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// --- exact TopK sparsification (extension) ---

type topK struct{ spec Spec }

func (c topK) Spec() Spec { return c.spec }

func (c topK) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c topK) CompressInto(dst *Payload, x []float32, _ uint64) *Payload {
	n := len(x)
	if n == 0 {
		*dst = Payload{Algo: TopK}
		return dst
	}
	k := keepCount(c.spec.Ratio, n)
	sc := kernelPool.Get().(*kernelScratch)
	perm := i32Buf(sc.order, n)
	sc.order = perm
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return mag(x[perm[a]]) > mag(x[perm[b]]) })
	top := perm[:k]
	sort.Slice(top, func(a, b int) bool { return top[a] < top[b] })
	idx := i32Buf(dst.Indices, k)
	copy(idx, top)
	kernelPool.Put(sc)
	vals := f32Buf(dst.Values, k)
	for i, j := range idx {
		vals[i] = x[j]
	}
	*dst = Payload{Algo: TopK, N: n, Indices: idx, Values: vals}
	return dst
}

func (c topK) Decompress(p *Payload, out []float32) error {
	return scatter(p, out, TopK)
}

func (c topK) WireBytes(n int) int {
	return sparseWireBytes(keepCount(c.spec.Ratio, n))
}

// --- EFSignSGD 1-bit quantization ---

type efSign struct{ spec Spec }

func (c efSign) Spec() Spec { return c.spec }

// Compress emits one sign bit per element plus the mean absolute value as
// the shared scale, the EFSignSGD encoding.
func (c efSign) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c efSign) CompressInto(dst *Payload, x []float32, _ uint64) *Payload {
	n := len(x)
	bits := bitsBuf(dst.Bits, (n+7)/8)
	var sum float64
	for i, v := range x {
		if v >= 0 {
			bits[i/8] |= 1 << (i % 8)
		}
		sum += math.Abs(float64(v))
	}
	scale := float32(0)
	if n > 0 {
		scale = float32(sum / float64(n))
	}
	*dst = Payload{Algo: EFSignSGD, N: n, Bits: bits, Scale: scale}
	return dst
}

func (c efSign) Decompress(p *Payload, out []float32) error {
	if err := checkRegion(p, out, EFSignSGD); err != nil {
		return err
	}
	if want := (p.N + 7) / 8; len(p.Bits) != want {
		return fmt.Errorf("compress: efsignsgd bitmap has %d bytes, want %d", len(p.Bits), want)
	}
	for i := range out {
		if p.Bits[i/8]&(1<<(i%8)) != 0 {
			out[i] = p.Scale
		} else {
			out[i] = -p.Scale
		}
	}
	return nil
}

func (c efSign) WireBytes(n int) int {
	return payloadHeaderBytes + 4 + (n+7)/8
}

// --- QSGD stochastic quantization (extension) ---

type qsgd struct{ spec Spec }

func (c qsgd) Spec() Spec { return c.spec }

// Compress quantizes x to spec.Levels non-negative magnitude levels with
// stochastic rounding; each element takes one sign bit plus
// ceil(log2(levels+1)) magnitude bits, packed little-endian.
func (c qsgd) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c qsgd) CompressInto(dst *Payload, x []float32, seed uint64) *Payload {
	n := len(x)
	levels := c.spec.Levels
	rng := splitmix64(seed)
	var norm float64
	for _, v := range x {
		norm += float64(v) * float64(v)
	}
	norm = math.Sqrt(norm)
	scale := float32(norm)
	bitsPer := qsgdBitsPerElem(levels)
	bits := bitsBuf(dst.Bits, (n*bitsPer+7)/8)
	for i, v := range x {
		code := uint64(0) // sign in lowest bit
		if v >= 0 {
			code = 1
		}
		level := uint64(0)
		if norm > 0 {
			u := math.Abs(float64(v)) / norm * float64(levels)
			floor := math.Floor(u)
			level = uint64(floor)
			if rng.float64() < u-floor {
				level++
			}
			if level > uint64(levels) {
				level = uint64(levels)
			}
		}
		code |= level << 1
		putBits(bits, i*bitsPer, bitsPer, code)
	}
	*dst = Payload{Algo: QSGD, N: n, Bits: bits, Scale: scale}
	return dst
}

func (c qsgd) Decompress(p *Payload, out []float32) error {
	if err := checkRegion(p, out, QSGD); err != nil {
		return err
	}
	levels := c.spec.Levels
	bitsPer := qsgdBitsPerElem(levels)
	if want := (p.N*bitsPer + 7) / 8; len(p.Bits) != want {
		return fmt.Errorf("compress: qsgd bitmap has %d bytes, want %d", len(p.Bits), want)
	}
	for i := range out {
		code := getBits(p.Bits, i*bitsPer, bitsPer)
		level := code >> 1
		v := p.Scale * float32(level) / float32(levels)
		if code&1 == 0 {
			v = -v
		}
		out[i] = v
	}
	return nil
}

func (c qsgd) WireBytes(n int) int {
	return payloadHeaderBytes + 4 + (n*qsgdBitsPerElem(c.spec.Levels)+7)/8
}

func qsgdBitsPerElem(levels int) int {
	b := 1 // sign
	for l := levels; l > 0; l >>= 1 {
		b++
	}
	return b
}

// --- TernGrad ternary quantization (extension) ---

type ternGrad struct{ spec Spec }

func (c ternGrad) Spec() Spec { return c.spec }

// Compress maps each element to {-1, 0, +1} * max|x| with stochastic
// rounding, packing 2 bits per element.
func (c ternGrad) Compress(x []float32, seed uint64) *Payload {
	return c.CompressInto(new(Payload), x, seed)
}

func (c ternGrad) CompressInto(dst *Payload, x []float32, seed uint64) *Payload {
	n := len(x)
	rng := splitmix64(seed)
	var maxAbs float64
	for _, v := range x {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	bits := bitsBuf(dst.Bits, (2*n+7)/8)
	for i, v := range x {
		code := uint64(0) // 0 => zero, 1 => +scale, 2 => -scale
		if maxAbs > 0 {
			p := math.Abs(float64(v)) / maxAbs
			if rng.float64() < p {
				if v >= 0 {
					code = 1
				} else {
					code = 2
				}
			}
		}
		putBits(bits, 2*i, 2, code)
	}
	*dst = Payload{Algo: TernGrad, N: n, Bits: bits, Scale: float32(maxAbs)}
	return dst
}

func (c ternGrad) Decompress(p *Payload, out []float32) error {
	if err := checkRegion(p, out, TernGrad); err != nil {
		return err
	}
	if want := (2*p.N + 7) / 8; len(p.Bits) != want {
		return fmt.Errorf("compress: terngrad bitmap has %d bytes, want %d", len(p.Bits), want)
	}
	for i := range out {
		switch getBits(p.Bits, 2*i, 2) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = p.Scale
		case 2:
			out[i] = -p.Scale
		default:
			return fmt.Errorf("compress: terngrad code 3 at element %d", i)
		}
	}
	return nil
}

func (c ternGrad) WireBytes(n int) int {
	return payloadHeaderBytes + 4 + (2*n+7)/8
}

// --- shared helpers ---

func checkRegion(p *Payload, out []float32, want ID) error {
	if p.Algo != want {
		return fmt.Errorf("compress: payload algo %v, decompressor %v", p.Algo, want)
	}
	if len(out) != p.N {
		return fmt.Errorf("compress: out has %d elements, payload covers %d", len(out), p.N)
	}
	return nil
}

// scatter writes a sparse payload into a zeroed dense region.
func scatter(p *Payload, out []float32, want ID) error {
	if err := checkRegion(p, out, want); err != nil {
		return err
	}
	if len(p.Indices) != len(p.Values) {
		return fmt.Errorf("compress: %d indices vs %d values", len(p.Indices), len(p.Values))
	}
	for i := range out {
		out[i] = 0
	}
	for i, j := range p.Indices {
		if j < 0 || int(j) >= p.N {
			return fmt.Errorf("compress: index %d outside region of %d", j, p.N)
		}
		out[j] = p.Values[i]
	}
	return nil
}

// sparseWireBytes is the encoded size of k (index, value) pairs.
func sparseWireBytes(k int) int { return payloadHeaderBytes + 8*k }

// putBits writes the low width bits of code at bit offset off.
func putBits(buf []byte, off, width int, code uint64) {
	for b := 0; b < width; b++ {
		if code&(1<<b) != 0 {
			buf[(off+b)/8] |= 1 << ((off + b) % 8)
		}
	}
}

// getBits reads width bits at bit offset off.
func getBits(buf []byte, off, width int) uint64 {
	var code uint64
	for b := 0; b < width; b++ {
		if buf[(off+b)/8]&(1<<((off+b)%8)) != 0 {
			code |= 1 << b
		}
	}
	return code
}
