package compress

import (
	"fmt"
	"sync"
)

// ErrorFeedback wraps a Compressor with the error-feedback mechanism
// (Karimireddy et al.; Lin et al.): the residual between the corrected
// gradient and its compressed representation is remembered and added to
// the next iteration's gradient. This is what lets aggressive GC preserve
// convergence (§2.3), and §5.1 applies it on both GPU and CPU compression.
//
// Memory is keyed by tensor name, one residual per tensor per worker.
// ErrorFeedback is safe for concurrent use by multiple goroutines.
type ErrorFeedback struct {
	c   Compressor
	mu  sync.Mutex
	mem map[string][]float32
}

// NewErrorFeedback wraps c.
func NewErrorFeedback(c Compressor) *ErrorFeedback {
	return &ErrorFeedback{c: c, mem: make(map[string][]float32)}
}

// Compressor returns the wrapped compressor.
func (ef *ErrorFeedback) Compressor() Compressor { return ef.c }

// Compress applies error feedback around the wrapped compressor: it
// corrects grad with the stored residual for key, compresses the corrected
// gradient, and stores the new residual. grad is not modified.
func (ef *ErrorFeedback) Compress(key string, grad []float32, seed uint64) (*Payload, error) {
	return ef.CompressInto(new(Payload), key, grad, seed)
}

// CompressInto is Compress writing the payload into dst (see
// Compressor.CompressInto): dst's backing arrays are reused, so a caller
// synchronizing the same tensors every iteration compresses with no
// steady-state payload allocation. The corrected gradient still allocates
// once per call — it becomes the stored residual.
func (ef *ErrorFeedback) CompressInto(dst *Payload, key string, grad []float32, seed uint64) (*Payload, error) {
	ef.mu.Lock()
	residual := ef.mem[key]
	ef.mu.Unlock()
	if residual != nil && len(residual) != len(grad) {
		return nil, fmt.Errorf("compress: residual for %q has %d elements, gradient has %d", key, len(residual), len(grad))
	}

	corrected := make([]float32, len(grad))
	copy(corrected, grad)
	if residual != nil {
		for i, r := range residual {
			corrected[i] += r
		}
	}
	p := ef.c.CompressInto(dst, corrected, seed)

	sc := kernelPool.Get().(*kernelScratch)
	recon := f32Buf(sc.sample, len(grad))
	sc.sample = recon
	if err := ef.c.Decompress(p, recon); err != nil {
		kernelPool.Put(sc)
		return nil, err
	}
	newResidual := corrected // reuse: corrected - recon
	for i := range newResidual {
		newResidual[i] -= recon[i]
	}
	kernelPool.Put(sc)
	ef.mu.Lock()
	ef.mem[key] = newResidual
	ef.mu.Unlock()
	return p, nil
}

// Residual returns a copy of the stored residual for key, or nil.
func (ef *ErrorFeedback) Residual(key string) []float32 {
	ef.mu.Lock()
	defer ef.mu.Unlock()
	r := ef.mem[key]
	if r == nil {
		return nil
	}
	return append([]float32(nil), r...)
}

// Reset drops all stored residuals.
func (ef *ErrorFeedback) Reset() {
	ef.mu.Lock()
	defer ef.mu.Unlock()
	ef.mem = make(map[string][]float32)
}
