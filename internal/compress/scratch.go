package compress

import "sync"

// kernelScratch holds the per-call intermediate storage of the selection
// kernels — threshold samples, Floyd sets, magnitude orders — working
// state that never escapes into payloads. It is pooled so steady-state
// compression of a fixed tensor set allocates only what the payload
// itself carries.
type kernelScratch struct {
	sample []float32
	set    map[int32]struct{}
	order  []int32
}

var kernelPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// resetSet returns the scratch's membership set, emptied.
func (s *kernelScratch) resetSet(hint int) map[int32]struct{} {
	if s.set == nil {
		s.set = make(map[int32]struct{}, hint)
	} else {
		clear(s.set)
	}
	return s.set
}

// f32Buf returns a length-n slice backed by buf when it has capacity.
// Contents are unspecified; callers overwrite every element.
func f32Buf(buf []float32, n int) []float32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float32, n)
}

// i32Buf is f32Buf for index slices.
func i32Buf(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int32, n)
}

// bitsBuf returns a zeroed length-n byte slice backed by buf when it has
// capacity — the bit packers OR bits in, so reused buffers must be clean.
func bitsBuf(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
