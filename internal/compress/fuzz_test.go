package compress

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWireDecode drives Decode with arbitrary byte strings. The wire
// contract under test:
//
//   - Decode never panics, whatever the input;
//   - every rejection is a typed *CorruptError (the DDL executor's
//     retry path switches on it), never a bare error or a crash;
//   - any accepted payload is a fixed point of the codec after one
//     re-encode: Encode(Decode(buf)) re-derives header fields such as
//     the flags byte, and from then on Decode∘Encode must be
//     byte-stable, or two replicas could disagree about a payload they
//     both accepted.
func FuzzWireDecode(f *testing.F) {
	// Valid encodings of each payload family, plus classic corruptions.
	sparse := Encode(MustNew(Spec{ID: DGC, Ratio: 0.05}).Compress(seedVec(257), 1))
	sign := Encode(MustNew(Spec{ID: EFSignSGD}).Compress(seedVec(64), 2))
	quant := Encode(MustNew(Spec{ID: QSGD, Levels: 16}).Compress(seedVec(100), 3))
	tern := Encode(MustNew(Spec{ID: TernGrad}).Compress(seedVec(33), 4))
	dense := Encode(MustNew(Spec{ID: FP32}).Compress(seedVec(17), 5))
	f.Add(sparse)
	f.Add(sign)
	f.Add(quant)
	f.Add(tern)
	f.Add(dense)
	f.Add([]byte{})
	f.Add(sparse[:payloadHeaderBytes-1]) // shorter than the header
	f.Add(sparse[:len(sparse)-3])        // body truncated, stale CRC
	flipped := append([]byte(nil), sign...)
	flipped[len(flipped)-1] ^= 0x40 // checksum mismatch
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, buf []byte) {
		p, err := Decode(buf)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("Decode returned untyped error %T: %v", err, err)
			}
			if p != nil {
				t.Fatalf("Decode returned both a payload and %v", err)
			}
			return
		}
		enc := Encode(p)
		q, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoding an accepted payload broke it: %v", err)
		}
		if enc2 := Encode(q); !bytes.Equal(enc, enc2) {
			t.Fatalf("codec not byte-stable after one re-encode:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

// seedVec builds a deterministic non-trivial gradient for corpus seeds.
func seedVec(n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32((i%7)-3) * (1 + float32(i)/float32(n))
	}
	return x
}
