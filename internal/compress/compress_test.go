package compress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	return x
}

func allSpecs() []Spec {
	return []Spec{
		{ID: FP32},
		{ID: RandomK, Ratio: 0.01},
		{ID: RandomK, Ratio: 0.25},
		{ID: DGC, Ratio: 0.01},
		{ID: DGC, Ratio: 0.1},
		{ID: TopK, Ratio: 0.05},
		{ID: EFSignSGD},
		{ID: QSGD, Levels: 16},
		{ID: TernGrad},
	}
}

func TestNewRejectsInvalidSpecs(t *testing.T) {
	bad := []Spec{
		{ID: RandomK, Ratio: 0},
		{ID: DGC, Ratio: 1.5},
		{ID: TopK, Ratio: -0.1},
		{ID: ID(99)},
	}
	for _, s := range bad {
		if _, err := New(s); err == nil {
			t.Errorf("New(%+v) accepted invalid spec", s)
		}
	}
}

func TestParseID(t *testing.T) {
	for _, name := range []string{"fp32", "randomk", "dgc", "efsignsgd", "topk", "qsgd", "terngrad"} {
		id, err := ParseID(name)
		if err != nil {
			t.Fatalf("ParseID(%q): %v", name, err)
		}
		if id.String() != name {
			t.Errorf("round-trip %q -> %v", name, id)
		}
	}
	if _, err := ParseID("zstd"); err == nil {
		t.Error("ParseID accepted unknown name")
	}
}

func TestFP32RoundTripExact(t *testing.T) {
	c := MustNew(Spec{ID: FP32})
	x := randVec(rand.New(rand.NewSource(1)), 1000)
	p := c.Compress(x, 0)
	out := make([]float32, len(x))
	if err := c.Decompress(p, out); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("element %d: %v != %v", i, out[i], x[i])
		}
	}
}

func TestSparsifiersKeepExactlyK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, spec := range []Spec{{ID: RandomK, Ratio: 0.01}, {ID: DGC, Ratio: 0.01}, {ID: TopK, Ratio: 0.01}} {
		c := MustNew(spec)
		for _, n := range []int{1, 7, 100, 4096, 50000} {
			x := randVec(rng, n)
			p := c.Compress(x, 42)
			want := keepCount(spec.Ratio, n)
			if len(p.Indices) != want || len(p.Values) != want {
				t.Errorf("%v n=%d: kept %d, want %d", spec, n, len(p.Indices), want)
			}
		}
	}
}

// Sparsified values must exactly equal the original values at the selected
// coordinates.
func TestSparsifierValueFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, spec := range []Spec{{ID: RandomK, Ratio: 0.05}, {ID: DGC, Ratio: 0.05}, {ID: TopK, Ratio: 0.05}} {
		c := MustNew(spec)
		x := randVec(rng, 10000)
		p := c.Compress(x, 7)
		for i, j := range p.Indices {
			if p.Values[i] != x[j] {
				t.Fatalf("%v: value at %d is %v, original %v", spec, j, p.Values[i], x[j])
			}
		}
	}
}

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	c := MustNew(Spec{ID: TopK, Ratio: 0.1})
	x := randVec(rand.New(rand.NewSource(4)), 1000)
	p := c.Compress(x, 0)
	selected := make(map[int32]bool)
	var minSel float32 = math.MaxFloat32
	for _, j := range p.Indices {
		selected[j] = true
		if mag(x[j]) < minSel {
			minSel = mag(x[j])
		}
	}
	for i, v := range x {
		if !selected[int32(i)] && mag(v) > minSel {
			t.Fatalf("unselected element %d has magnitude %v > min selected %v", i, mag(v), minSel)
		}
	}
}

// DGC's sampled threshold must still land most of the true top-k mass.
func TestDGCApproximatesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randVec(rng, 50000)
	exact := MustNew(Spec{ID: TopK, Ratio: 0.01}).Compress(x, 0)
	approx := MustNew(Spec{ID: DGC, Ratio: 0.01}).Compress(x, 9)
	var exactMass, approxMass float64
	for _, v := range exact.Values {
		exactMass += float64(mag(v))
	}
	for _, v := range approx.Values {
		approxMass += float64(mag(v))
	}
	if approxMass < 0.85*exactMass {
		t.Fatalf("DGC captured %.1f%% of top-k mass, want >= 85%%", 100*approxMass/exactMass)
	}
}

func TestRandomKDeterministicAcrossWorkers(t *testing.T) {
	c := MustNew(Spec{ID: RandomK, Ratio: 0.02})
	x := randVec(rand.New(rand.NewSource(6)), 5000)
	p1 := c.Compress(x, 12345)
	p2 := c.Compress(x, 12345)
	if len(p1.Indices) != len(p2.Indices) {
		t.Fatal("different selection sizes for identical seeds")
	}
	for i := range p1.Indices {
		if p1.Indices[i] != p2.Indices[i] {
			t.Fatal("different coordinates for identical seeds")
		}
	}
	p3 := c.Compress(x, 54321)
	same := true
	for i := range p1.Indices {
		if i >= len(p3.Indices) || p1.Indices[i] != p3.Indices[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("selection did not vary with seed")
	}
}

func TestEFSignSGDReconstruction(t *testing.T) {
	c := MustNew(Spec{ID: EFSignSGD})
	x := []float32{1.5, -0.5, 2.0, -4.0}
	p := c.Compress(x, 0)
	wantScale := float32((1.5 + 0.5 + 2.0 + 4.0) / 4)
	if p.Scale != wantScale {
		t.Fatalf("scale = %v, want %v", p.Scale, wantScale)
	}
	out := make([]float32, 4)
	if err := c.Decompress(p, out); err != nil {
		t.Fatal(err)
	}
	want := []float32{wantScale, -wantScale, wantScale, -wantScale}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

// Property: every algorithm's decompressed output has the right length and
// sign agreement where it carries information.
func TestSignPreservationProperty(t *testing.T) {
	c := MustNew(Spec{ID: EFSignSGD})
	prop := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float32, len(raw))
		for i, v := range raw {
			x[i] = float32(v) + 0.5 // avoid exact zeros
		}
		p := c.Compress(x, 0)
		out := make([]float32, len(x))
		if err := c.Decompress(p, out); err != nil {
			return false
		}
		for i := range x {
			if (x[i] >= 0) != (out[i] >= 0) && p.Scale != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: wire encoding round-trips every payload bit-exactly, and the
// encoded size matches WireBytes.
func TestWireRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, spec := range allSpecs() {
		c := MustNew(spec)
		for _, n := range []int{1, 5, 63, 64, 65, 1000, 12345} {
			x := randVec(rng, n)
			p := c.Compress(x, uint64(n))
			buf := Encode(p)
			if len(buf) != c.WireBytes(n) {
				t.Errorf("%v n=%d: encoded %d bytes, WireBytes says %d", spec, n, len(buf), c.WireBytes(n))
			}
			q, err := Decode(buf)
			if err != nil {
				t.Fatalf("%v n=%d: decode: %v", spec, n, err)
			}
			a := make([]float32, n)
			b := make([]float32, n)
			if err := c.Decompress(p, a); err != nil {
				t.Fatal(err)
			}
			if err := c.Decompress(q, b); err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v n=%d: decoded payload differs at %d", spec, n, i)
				}
			}
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	c := MustNew(Spec{ID: DGC, Ratio: 0.1})
	p := c.Compress(randVec(rand.New(rand.NewSource(8)), 1000), 1)
	buf := Encode(p)
	for _, cut := range []int{0, 5, payloadHeaderBytes, len(buf) - 1} {
		if _, err := Decode(buf[:cut]); err == nil && cut < len(buf) {
			t.Errorf("Decode accepted %d/%d bytes", cut, len(buf))
		}
	}
}

func TestCompressionRatiosMatchPaper(t *testing.T) {
	n := 1 << 20 // 4 MB of floats
	dense := 4 * n
	// DGC/RandomK at 1%: indices+values => ~2% of original bytes.
	sparse := MustNew(Spec{ID: DGC, Ratio: 0.01}).WireBytes(n)
	if r := float64(sparse) / float64(dense); r < 0.019 || r > 0.021 {
		t.Errorf("sparsifier wire ratio = %v, want ~0.02", r)
	}
	// EFSignSGD: 1 bit per 32-bit element => ~1/32.
	sign := MustNew(Spec{ID: EFSignSGD}).WireBytes(n)
	if r := float64(sign) / float64(dense); r < 0.031 || r > 0.032 {
		t.Errorf("efsignsgd wire ratio = %v, want ~1/32", r)
	}
}

func TestSliceSparsePayload(t *testing.T) {
	c := MustNew(Spec{ID: TopK, Ratio: 0.5})
	x := []float32{10, -20, 30, -40, 50, -60, 70, -80}
	p := c.Compress(x, 0) // keeps 4 largest: 50,-60,70,-80 at 4..7
	left, err := Slice(p, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Slice(p, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(left.Indices)+len(right.Indices) != len(p.Indices) {
		t.Fatalf("slice lost entries: %d + %d != %d", len(left.Indices), len(right.Indices), len(p.Indices))
	}
	if right.Base != 4 || right.N != 4 {
		t.Fatalf("right slice region = base %d n %d", right.Base, right.N)
	}
	acc := make([]float32, 8)
	if err := AddDecompressed(c, left, acc); err != nil {
		t.Fatal(err)
	}
	if err := AddDecompressed(c, right, acc); err != nil {
		t.Fatal(err)
	}
	full := make([]float32, 8)
	if err := c.Decompress(p, full); err != nil {
		t.Fatal(err)
	}
	for i := range acc {
		if acc[i] != full[i] {
			t.Fatalf("sliced reassembly differs at %d: %v vs %v", i, acc[i], full[i])
		}
	}
}

// Property: slicing a sign payload at any boundary and reassembling equals
// the unsliced decompression.
func TestSliceBitmapProperty(t *testing.T) {
	c := MustNew(Spec{ID: EFSignSGD})
	prop := func(raw []int8, cutRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		x := make([]float32, len(raw))
		for i, v := range raw {
			x[i] = float32(v) + 0.25
		}
		p := c.Compress(x, 0)
		cut := 1 + int(cutRaw)%(len(x)-1)
		a, err := Slice(p, 0, cut)
		if err != nil {
			return false
		}
		b, err := Slice(p, cut, len(x))
		if err != nil {
			return false
		}
		full := make([]float32, len(x))
		if err := c.Decompress(p, full); err != nil {
			return false
		}
		outA := make([]float32, a.N)
		outB := make([]float32, b.N)
		if c.Decompress(a, outA) != nil || c.Decompress(b, outB) != nil {
			return false
		}
		for i := range outA {
			if outA[i] != full[i] {
				return false
			}
		}
		for i := range outB {
			if outB[i] != full[cut+i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShardBounds(t *testing.T) {
	b := ShardBounds(10, 3)
	want := []int{0, 3, 6, 10}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
	if b := ShardBounds(5, 8); b[len(b)-1] != 5 || len(b) != 9 {
		t.Fatalf("more parts than elements: %v", b)
	}
}

// Error feedback invariant: in exact arithmetic, reconstructed + residual
// equals corrected gradient. With floats we check to tight tolerance.
func TestErrorFeedbackResidualInvariant(t *testing.T) {
	for _, spec := range []Spec{{ID: RandomK, Ratio: 0.1}, {ID: DGC, Ratio: 0.1}, {ID: EFSignSGD}} {
		c := MustNew(spec)
		ef := NewErrorFeedback(c)
		rng := rand.New(rand.NewSource(9))
		grad := randVec(rng, 500)
		p, err := ef.Compress("t0", grad, 1)
		if err != nil {
			t.Fatal(err)
		}
		recon := make([]float32, len(grad))
		if err := c.Decompress(p, recon); err != nil {
			t.Fatal(err)
		}
		res := ef.Residual("t0")
		for i := range grad {
			if diff := math.Abs(float64(grad[i] - (recon[i] + res[i]))); diff > 1e-5 {
				t.Fatalf("%v: residual invariant broken at %d: %v", spec, i, diff)
			}
		}
	}
}

// Error feedback must eventually transmit every coordinate's mass: with a
// constant gradient and RandomK, the accumulated transmitted value per
// coordinate approaches iterations*value.
func TestErrorFeedbackDeliversAllMass(t *testing.T) {
	c := MustNew(Spec{ID: RandomK, Ratio: 0.2})
	ef := NewErrorFeedback(c)
	n := 50
	grad := make([]float32, n)
	for i := range grad {
		grad[i] = 1
	}
	iters := 200
	acc := make([]float32, n)
	for it := 0; it < iters; it++ {
		p, err := ef.Compress("t", grad, uint64(it))
		if err != nil {
			t.Fatal(err)
		}
		if err := AddDecompressed(c, p, acc); err != nil {
			t.Fatal(err)
		}
	}
	var total float64
	for i, v := range acc {
		total += float64(v)
		// Any coordinate's deficit equals its final residual, which is
		// geometric with mean 1/ratio = 5 iterations of mass; allow a
		// generous tail.
		if float64(v) < 0.7*float64(iters) {
			t.Fatalf("coordinate %d received %v of %d total mass", i, v, iters)
		}
	}
	if total < 0.95*float64(n*iters) {
		t.Fatalf("aggregate mass %v below 95%% of %d", total, n*iters)
	}
}

func TestErrorFeedbackLengthMismatch(t *testing.T) {
	ef := NewErrorFeedback(MustNew(Spec{ID: EFSignSGD}))
	if _, err := ef.Compress("t", make([]float32, 10), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ef.Compress("t", make([]float32, 20), 0); err == nil {
		t.Error("length change across iterations not rejected")
	}
}

func TestQSGDUnbiasedMagnitude(t *testing.T) {
	c := MustNew(Spec{ID: QSGD, Levels: 16})
	x := []float32{3, -4} // norm 5
	sum := make([]float64, 2)
	trials := 2000
	out := make([]float32, 2)
	for i := 0; i < trials; i++ {
		p := c.Compress(x, uint64(i))
		if err := c.Decompress(p, out); err != nil {
			t.Fatal(err)
		}
		sum[0] += float64(out[0])
		sum[1] += float64(out[1])
	}
	if got := sum[0] / float64(trials); math.Abs(got-3) > 0.15 {
		t.Errorf("E[q(3)] = %v, want ~3", got)
	}
	if got := sum[1] / float64(trials); math.Abs(got+4) > 0.15 {
		t.Errorf("E[q(-4)] = %v, want ~-4", got)
	}
}

func TestTernGradValuesAreTernary(t *testing.T) {
	c := MustNew(Spec{ID: TernGrad})
	x := randVec(rand.New(rand.NewSource(10)), 1000)
	p := c.Compress(x, 3)
	out := make([]float32, len(x))
	if err := c.Decompress(p, out); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 && v != p.Scale && v != -p.Scale {
			t.Fatalf("element %d = %v, not in {0, +-%v}", i, v, p.Scale)
		}
	}
}

func TestDecompressErrors(t *testing.T) {
	c := MustNew(Spec{ID: DGC, Ratio: 0.1})
	p := c.Compress(randVec(rand.New(rand.NewSource(11)), 100), 0)
	if err := c.Decompress(p, make([]float32, 99)); err == nil {
		t.Error("wrong output length accepted")
	}
	p.Indices[0] = 1000
	if err := c.Decompress(p, make([]float32, 100)); err == nil {
		t.Error("out-of-range index accepted")
	}
	other := MustNew(Spec{ID: EFSignSGD})
	if err := other.Decompress(p, make([]float32, 100)); err == nil {
		t.Error("algorithm mismatch accepted")
	}
}

func TestAddDecompressedBoundsCheck(t *testing.T) {
	c := MustNew(Spec{ID: FP32})
	p := c.Compress([]float32{1, 2, 3}, 0)
	p.Base = 2
	if err := AddDecompressed(c, p, make([]float32, 4)); err == nil {
		t.Error("region past accumulator end accepted")
	}
}

// Decode must never panic on arbitrary bytes — payloads arrive from the
// network in a real deployment.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", buf, r)
				}
			}()
			p, err := Decode(buf)
			if err != nil || p == nil {
				return
			}
			// A structurally valid decode may still carry a bogus
			// algorithm or counts; decompressing must fail cleanly,
			// not corrupt memory.
			if c, err := New(Spec{ID: p.Algo, Ratio: 0.5}); err == nil {
				out := make([]float32, p.N)
				_ = c.Decompress(p, out)
			}
		}()
	}
}

// DGC's threshold-estimation sample is 1% of the tensor, floored at 64
// so small tensors stay accurate and capped at 4096 so huge tensors
// don't pay an O(n) sort for a threshold estimate (the cap used to be
// missing), and never larger than the tensor itself.
func TestDGCSampleSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{50, 50},        // tiny tensor: clamp to n
		{1000, 64},      // 1% would be 10 → floor at 64
		{6400, 64},      // exactly the floor
		{20000, 200},    // plain 1%
		{409600, 4096},  // exactly the cap
		{1 << 24, 4096}, // huge tensor → cap, not 167772
	}
	for _, tc := range cases {
		if got := dgcSampleSize(tc.n); got != tc.want {
			t.Errorf("dgcSampleSize(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// The sample cap must not disturb wire determinism: same input, same
// selection, bit-identical wire bytes across calls.
func TestDGCSampleCapDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randVec(rng, 1<<20) // large enough to hit the 4096 cap
	c, err := New(Spec{ID: DGC, Ratio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	a := Encode(c.Compress(x, 3))
	b := Encode(c.Compress(x, 3))
	if len(a) != len(b) {
		t.Fatalf("wire sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("wire byte %d differs", i)
		}
	}
}

// Corruption anywhere in an encoded payload — header, counts, or body —
// is rejected with a typed *CorruptError, and an untouched buffer still
// decodes. This is the integrity contract the DDL wire-fault retry
// machinery relies on.
func TestDecodeRejectsCorruption(t *testing.T) {
	c := MustNew(Spec{ID: DGC, Ratio: 0.1})
	p := c.Compress(randVec(rand.New(rand.NewSource(9)), 1000), 1)
	buf := Encode(p)
	for _, pos := range []int{0, 3, 11, payloadHeaderBytes + 2, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0x40
		_, err := Decode(bad)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Errorf("flip at byte %d: got %v, want *CorruptError", pos, err)
		}
	}
	// Truncation is also typed.
	_, err := Decode(buf[:len(buf)-1])
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Errorf("truncated decode: got %v, want *CorruptError", err)
	}
	if q, err := Decode(buf); err != nil || q.N != p.N {
		t.Fatalf("clean decode failed: %v", err)
	}
}
