// Package compress implements the gradient-compression (GC) algorithms the
// paper evaluates — RandomK and DGC sparsification, EFSignSGD 1-bit
// quantization — plus an FP32 passthrough, with the error-feedback
// mechanism that preserves convergence (§2.3).
//
// The algorithms operate on real float32 gradients and produce payloads
// with a deterministic wire encoding, so the executable DDL engine
// exchanges genuinely compressed bytes. Every algorithm has a
// deterministic compressed size for a given tensor size, the property
// Espresso's empirical models require (§4.3).
package compress

import (
	"errors"
	"fmt"
	"math"
)

// ID identifies a compression algorithm.
type ID int

const (
	// FP32 is the no-compression passthrough (the paper's baseline).
	FP32 ID = iota
	// RandomK keeps a uniformly random fraction of the gradient
	// elements (Stich et al., "Sparsified SGD with memory").
	RandomK
	// DGC keeps the largest-magnitude fraction of the elements (Lin et
	// al., "Deep gradient compression"), selected with a sampled
	// threshold like the reference implementation.
	DGC
	// EFSignSGD quantizes each element to its sign, scaled by the mean
	// absolute value, with error feedback (Karimireddy et al.).
	EFSignSGD
	// TopK is exact largest-magnitude selection; DGC without threshold
	// sampling. Included as an extension algorithm.
	TopK
	// QSGD is stochastic uniform quantization to a small number of
	// levels (Alistarh et al.). Included as an extension algorithm.
	QSGD
	// TernGrad quantizes to {-1, 0, +1} times a per-tensor scale (Wen
	// et al.). Included as an extension algorithm.
	TernGrad
)

var idNames = map[ID]string{
	FP32:      "fp32",
	RandomK:   "randomk",
	DGC:       "dgc",
	EFSignSGD: "efsignsgd",
	TopK:      "topk",
	QSGD:      "qsgd",
	TernGrad:  "terngrad",
}

func (id ID) String() string {
	if s, ok := idNames[id]; ok {
		return s
	}
	return fmt.Sprintf("ID(%d)", int(id))
}

// ParseID converts a config-file algorithm name to an ID.
func ParseID(s string) (ID, error) {
	for id, name := range idNames {
		if name == s {
			return id, nil
		}
	}
	return 0, fmt.Errorf("compress: unknown algorithm %q", s)
}

// Spec selects an algorithm and its parameters, as given in the GC
// configuration file of Figure 6.
type Spec struct {
	ID ID
	// Ratio is the fraction of elements kept by sparsifiers (the paper
	// uses 0.01). Quantizers and FP32 ignore it.
	Ratio float64
	// Levels is the number of quantization levels for QSGD (default 16).
	Levels int
}

// Sparsifying reports whether the algorithm transmits (index, value) pairs.
func (s Spec) Sparsifying() bool {
	return s.ID == RandomK || s.ID == DGC || s.ID == TopK
}

func (s Spec) String() string {
	if s.Sparsifying() {
		return fmt.Sprintf("%s(%g)", s.ID, s.Ratio)
	}
	return s.ID.String()
}

// Validate checks the spec.
func (s Spec) Validate() error {
	if _, ok := idNames[s.ID]; !ok {
		return fmt.Errorf("compress: unknown algorithm id %d", int(s.ID))
	}
	if s.Sparsifying() && (s.Ratio <= 0 || s.Ratio > 1) {
		return fmt.Errorf("compress: sparsifier ratio %g outside (0,1]", s.Ratio)
	}
	if s.ID == QSGD && s.Levels < 0 {
		return errors.New("compress: QSGD levels must be non-negative")
	}
	return nil
}

// Payload is a compressed gradient (or gradient shard).
type Payload struct {
	Algo ID
	// N is the element count of the dense region this payload covers.
	N int
	// Base is the dense offset of the region within the original
	// tensor; divisible schemes slice tensors into shards.
	Base int

	// Sparsifiers: parallel index/value arrays. Indices are relative to
	// Base.
	Indices []int32
	Values  []float32

	// Sign/ternary quantizers: 2 bits per element for TernGrad, 1 bit
	// for EFSignSGD; QSGD packs level indices. Scale is the shared
	// multiplier.
	Bits  []byte
	Scale float32
}

// Compressor turns dense gradients into payloads and back.
type Compressor interface {
	// Spec returns the algorithm configuration.
	Spec() Spec
	// Compress compresses x. seed makes randomized algorithms
	// deterministic and must vary per (tensor, iteration) to avoid
	// systematic bias. The returned payload has Base 0.
	Compress(x []float32, seed uint64) *Payload
	// CompressInto is Compress writing into dst: dst is fully
	// overwritten (Base reset to 0) and returned, with its backing
	// arrays (Indices, Values, Bits) reused when they have capacity.
	// The executable engine hands each GPU a long-lived payload so
	// steady-state compression allocates nothing beyond buffer growth.
	CompressInto(dst *Payload, x []float32, seed uint64) *Payload
	// Decompress reconstructs the dense region into out, which must
	// have length p.N. Elements the payload does not carry are zeroed.
	Decompress(p *Payload, out []float32) error
	// WireBytes reports the exact encoded size of a compressed
	// n-element region. It is deterministic, as §4.3 requires.
	WireBytes(n int) int
}

// New constructs the compressor for spec.
func New(spec Spec) (Compressor, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.ID {
	case FP32:
		return fp32{spec}, nil
	case RandomK:
		return randomK{spec}, nil
	case DGC:
		return dgc{spec}, nil
	case TopK:
		return topK{spec}, nil
	case EFSignSGD:
		return efSign{spec}, nil
	case QSGD:
		if spec.Levels == 0 {
			spec.Levels = 16
		}
		return qsgd{spec}, nil
	case TernGrad:
		return ternGrad{spec}, nil
	default:
		return nil, fmt.Errorf("compress: unhandled algorithm %v", spec.ID)
	}
}

// MustNew is New for statically known specs; it panics on error.
func MustNew(spec Spec) Compressor {
	c, err := New(spec)
	if err != nil {
		panic(err)
	}
	return c
}

// keepCount returns the number of elements a sparsifier keeps for an
// n-element tensor: at least one (when the tensor is non-empty), at most
// n. Zero-length regions arise when a divisible scheme shards a tensor
// smaller than the node count.
func keepCount(ratio float64, n int) int {
	if n == 0 {
		return 0
	}
	k := int(math.Ceil(ratio * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// AddDecompressed decompresses p with c and adds the result into acc,
// which covers the full original tensor; p.Base offsets the write. This is
// the aggregation step after Allgather/Alltoall of compressed tensors —
// compressed aggregation is not associative (§4.2.1), so aggregation
// always happens in the dense domain.
func AddDecompressed(c Compressor, p *Payload, acc []float32) error {
	if p.Base < 0 || p.Base+p.N > len(acc) {
		return fmt.Errorf("compress: payload region [%d,%d) outside accumulator of %d", p.Base, p.Base+p.N, len(acc))
	}
	tmp := make([]float32, p.N)
	if err := c.Decompress(p, tmp); err != nil {
		return err
	}
	region := acc[p.Base : p.Base+p.N]
	for i, v := range tmp {
		region[i] += v
	}
	return nil
}

// splitmix64 is the PRNG used for all randomized selection. It is tiny,
// fast, and identical on every worker given the same seed.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// intn returns a uniform integer in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}
