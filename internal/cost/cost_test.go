package cost

import (
	"testing"
	"testing/quick"
	"time"

	"espresso/internal/cluster"
	"espresso/internal/compress"
)

var testLink = Link{Alpha: 10 * time.Microsecond, Bps: 10e9}

func TestCollectivesDegenerateWithOneNode(t *testing.T) {
	l := testLink
	if l.Allreduce(1, 1<<20) != 0 || l.Allgather(1, 1<<20) != 0 ||
		l.Alltoall(1, 1<<20) != 0 || l.Broadcast(1, 1<<20) != 0 ||
		l.Reduce(1, 1<<20) != 0 || l.ReduceScatter(1, 1<<20) != 0 ||
		l.Gather(1, 1<<20) != 0 {
		t.Fatal("single-node collectives must be free")
	}
}

func TestAllreduceEqualsRSPlusAG(t *testing.T) {
	l := testLink
	for _, n := range []int{2, 4, 8, 64} {
		s := int64(100 << 20)
		ar := l.Allreduce(n, s)
		composed := l.ReduceScatter(n, s) + l.Allgather(n, s/int64(n))
		diff := ar - composed
		if diff < 0 {
			diff = -diff
		}
		// The shard sizes differ only by integer division remainder.
		if diff > ar/100 {
			t.Errorf("n=%d: allreduce %v != RS+AG %v", n, ar, composed)
		}
	}
}

// The ring allreduce time approaches 2*s/B as n grows — the bandwidth
// optimality property.
func TestAllreduceBandwidthOptimal(t *testing.T) {
	l := Link{Alpha: 0, Bps: 10e9}
	s := int64(1 << 30)
	ideal := time.Duration(2 * float64(s) / l.Bps * float64(time.Second))
	got := l.Allreduce(1024, s)
	if got < ideal*99/100 || got > ideal*101/100 {
		t.Fatalf("allreduce(1024) = %v, want ~%v", got, ideal)
	}
}

// Allgather of full compressed tensors grows linearly with n — the reason
// compressed traffic eventually loses to allreduce at scale (§3.1).
func TestAllgatherTrafficGrowsWithN(t *testing.T) {
	l := testLink
	c := int64(1 << 20)
	t8, t16 := l.Allgather(8, c), l.Allgather(16, c)
	if t16 <= t8 {
		t.Fatalf("allgather(16)=%v should exceed allgather(8)=%v", t16, t8)
	}
	ratio := float64(t16) / float64(t8)
	if ratio < 2.0 || ratio > 2.3 {
		t.Fatalf("allgather scaling ratio = %v, want ~15/7", ratio)
	}
}

func TestAlltoallCheaperThanAllgather(t *testing.T) {
	l := testLink
	c := int64(8 << 20)
	for _, n := range []int{4, 8, 64} {
		if l.Alltoall(n, c) >= l.Allgather(n, c) {
			t.Errorf("n=%d: alltoall %v should be cheaper than allgather %v",
				n, l.Alltoall(n, c), l.Allgather(n, c))
		}
	}
}

// Property: every collective is monotone in payload size.
func TestCollectiveMonotonicityProperty(t *testing.T) {
	l := testLink
	fns := []func(int, int64) time.Duration{
		l.Allreduce, l.ReduceScatter, l.Allgather, l.Alltoall,
		l.Reduce, l.Broadcast, l.Gather,
	}
	prop := func(aRaw, bRaw uint32, nRaw uint8) bool {
		a, b := int64(aRaw), int64(bRaw)
		if a > b {
			a, b = b, a
		}
		n := 2 + int(nRaw)%63
		for _, f := range fns {
			if f(n, a) > f(n, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// GPU compression is typically faster than CPU compression (§3) — pinned
// for RandomK, whose selection kernel parallelizes trivially. The paper's
// own Table 1 shows CPU compression can win for specific algorithms
// (BERT's CPU entry beats its GPU entry), so this is not asserted
// universally; instead every algorithm's CPU profile must stay within a
// sane band of its GPU profile.
func TestModelsDeviceProfiles(t *testing.T) {
	s := int64(64 << 20)
	m := MustModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.RandomK, Ratio: 0.01})
	if m.CompressTime(GPU, s) >= m.CompressTime(CPU, s) {
		t.Fatalf("GPU RandomK %v should beat CPU %v",
			m.CompressTime(GPU, s), m.CompressTime(CPU, s))
	}
	for _, id := range []compress.ID{compress.RandomK, compress.DGC, compress.TopK, compress.EFSignSGD} {
		spec := compress.Spec{ID: id, Ratio: 0.01}
		mm := MustModels(cluster.NVLinkTestbed(8), spec)
		gpu, cpu := mm.CompressTime(GPU, s), mm.CompressTime(CPU, s)
		if cpu > 40*gpu || gpu > 40*cpu {
			t.Errorf("%v: device profiles implausibly far apart: GPU %v, CPU %v", id, gpu, cpu)
		}
	}
}

func TestFP32CompressionIsFree(t *testing.T) {
	m := MustModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.FP32})
	if m.CompressTime(GPU, 1<<30) != 0 || m.CompressTime(CPU, 1<<30) != 0 {
		t.Fatal("FP32 passthrough must cost nothing")
	}
	if m.DecompressTime(GPU, 1<<30, 4) != 0 {
		t.Fatal("FP32 decompression must cost nothing")
	}
}

// Figure 10's premise: the ratio of saved communication time to incurred
// GPU compression time increases with tensor size, because of the fixed
// kernel-launch overhead.
func TestBenefitRatioIncreasesWithSize(t *testing.T) {
	c := cluster.NVLinkTestbed(8)
	m := MustModels(c, compress.Spec{ID: RandomKSpec.ID, Ratio: RandomKSpec.Ratio})
	prev := -1.0
	for _, bytes := range []int64{64 << 10, 1 << 20, 16 << 20, 256 << 20} {
		saved := m.Inter.Allreduce(c.Machines, bytes) - m.Inter.Allgather(c.Machines, m.WireBytes(bytes))
		cost := m.CompressTime(GPU, bytes) + m.DecompressTime(GPU, bytes, c.Machines)
		ratio := float64(saved) / float64(cost)
		if ratio <= prev {
			t.Fatalf("benefit ratio not increasing at %d bytes: %v <= %v", bytes, ratio, prev)
		}
		prev = ratio
	}
}

func TestDecompressTimeGrowsWithCopies(t *testing.T) {
	m := MustModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.EFSignSGD})
	if m.DecompressTime(GPU, 1<<20, 8) <= m.DecompressTime(GPU, 1<<20, 2) {
		t.Fatal("decompressing more payloads should take longer")
	}
	if m.DecompressTime(GPU, 1<<20, 0) != 0 {
		t.Fatal("zero copies should be free")
	}
}

func TestStagingTime(t *testing.T) {
	c := cluster.NVLinkTestbed(8)
	m := MustModels(c, compress.Spec{ID: compress.EFSignSGD})
	got := m.StagingTime(int64(c.PCIeHostBandwidth))
	if got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("staging a bandwidth-second of bytes = %v, want ~1s", got)
	}
	if m.StagingTime(0) != 0 {
		t.Fatal("zero bytes should stage for free")
	}
}

func TestWireBytesAndRatio(t *testing.T) {
	m := MustModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.DGC, Ratio: 0.01})
	if r := m.Ratio(); r < 0.019 || r > 0.022 {
		t.Fatalf("DGC ratio = %v, want ~0.02", r)
	}
	msign := MustModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.EFSignSGD})
	if r := msign.Ratio(); r < 0.031 || r > 0.033 {
		t.Fatalf("EFSignSGD ratio = %v, want ~1/32", r)
	}
}

func TestNewModelsValidates(t *testing.T) {
	bad := cluster.NVLinkTestbed(8)
	bad.Machines = 0
	if _, err := NewModels(bad, compress.Spec{ID: compress.FP32}); err == nil {
		t.Error("invalid cluster accepted")
	}
	if _, err := NewModels(cluster.NVLinkTestbed(8), compress.Spec{ID: compress.DGC, Ratio: 0}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestFlatLinkUsesNICShare(t *testing.T) {
	c := cluster.NVLinkTestbed(8)
	m := MustModels(c, compress.Spec{ID: compress.FP32})
	want := c.InterBandwidth / float64(c.GPUsPerMachine)
	if m.Flat.Bps != want {
		t.Fatalf("flat bps = %v, want %v", m.Flat.Bps, want)
	}
	single := cluster.NVLinkTestbed(1)
	ms := MustModels(single, compress.Spec{ID: compress.FP32})
	if ms.Flat.Bps != single.IntraBandwidth {
		t.Fatal("single machine flat link should use intra bandwidth")
	}
}

// RandomKSpec is a convenience used by several cost tests.
var RandomKSpec = compress.Spec{ID: compress.RandomK, Ratio: 0.01}
