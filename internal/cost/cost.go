// Package cost implements Espresso's empirical time models (§4.3): α–β
// cost models for the collective routines of Table 2 (following Thakur et
// al. and the NCCL performance notes), compression/decompression time
// models for GPU and CPU devices with a fixed launch overhead, and host
// staging costs for CPU offloading.
//
// All models are deterministic functions of tensor size, participant
// count, and bandwidth — the property the paper requires of GC algorithms
// and measures to hold within 5% across runs.
package cost

import (
	"fmt"
	"math"
	"time"

	"espresso/internal/cluster"
	"espresso/internal/compress"
)

// Device is the compute resource performing a compression operation
// (Dimension 2 of the search space).
type Device int

const (
	// GPU compression is fast but contends with backward computation.
	GPU Device = iota
	// CPU compression is slower and pays PCIe staging, but runs on
	// otherwise-idle host cores.
	CPU
)

func (d Device) String() string {
	switch d {
	case GPU:
		return "GPU"
	case CPU:
		return "CPU"
	default:
		return fmt.Sprintf("Device(%d)", int(d))
	}
}

// Link models one communication domain with a per-message startup cost α
// and per-participant bandwidth β expressed in bytes/second.
type Link struct {
	Alpha time.Duration
	Bps   float64
}

func (l Link) xfer(bytes float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(bytes / l.Bps * float64(time.Second))
}

func steps(n int) float64 { return float64(n - 1) }

func log2ceil(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Allreduce is an allreduce of a bytes-sized tensor among n nodes. Like
// NCCL, the model picks the better of the ring algorithm (2(n-1) steps of
// bytes/n — bandwidth-optimal) and the binomial reduce+broadcast tree
// (2 ceil(log2 n) rounds of the full payload — latency-optimal for small
// tensors).
func (l Link) Allreduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	per := float64(bytes) / float64(n)
	ring := time.Duration(2*steps(n)) * (l.Alpha + l.xfer(per))
	tree := time.Duration(2*log2ceil(n)) * (l.Alpha + l.xfer(float64(bytes)))
	if tree < ring {
		return tree
	}
	return ring
}

// ReduceScatter is the first half of a ring allreduce: (n-1) steps of
// bytes/n each, leaving each node with an aggregated shard.
func (l Link) ReduceScatter(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	per := float64(bytes) / float64(n)
	return time.Duration(steps(n)) * (l.Alpha + l.xfer(per))
}

// Allgather distributes each node's contribution of contrib bytes to all
// others: (n-1) ring steps of contrib each. For uncompressed divisible
// schemes contrib is shard-sized (bytes/n); for compressed indivisible
// schemes contrib is a full compressed tensor, which is why compressed
// traffic grows with n (§3.1).
func (l Link) Allgather(n int, contrib int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(steps(n)) * (l.Alpha + l.xfer(float64(contrib)))
}

// Alltoall shuffles each node's contribution of contrib bytes, sending a
// 1/n slice to every peer: (n-1) messages of contrib/n.
func (l Link) Alltoall(n int, contrib int64) time.Duration {
	if n <= 1 {
		return 0
	}
	per := float64(contrib) / float64(n)
	return time.Duration(steps(n)) * (l.Alpha + l.xfer(per))
}

// Reduce aggregates a bytes-sized tensor to a root over a binomial tree.
func (l Link) Reduce(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(log2ceil(n)) * (l.Alpha + l.xfer(float64(bytes)))
}

// Broadcast sends a bytes-sized tensor from a root over a binomial tree.
func (l Link) Broadcast(n int, bytes int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(log2ceil(n)) * (l.Alpha + l.xfer(float64(bytes)))
}

// Gather collects each node's contribution of contrib bytes at a root,
// which serializes on the root's ingress link.
func (l Link) Gather(n int, contrib int64) time.Duration {
	if n <= 1 {
		return 0
	}
	return time.Duration(steps(n)) * (l.Alpha + l.xfer(float64(contrib)))
}

// deviceProfile is the empirical compression throughput profile for one
// (algorithm, device) pair: a fixed dispatch overhead plus streaming
// throughput over the dense input bytes. Decompression throughput covers
// reconstructing (scattering into) the dense region.
type deviceProfile struct {
	launch     time.Duration
	compBps    float64       // streaming throughput over dense input bytes
	decompBps  float64       // scatter/unpack throughput over compressed wire bytes
	denseBps   float64       // throughput of the single dense accumulate pass
	perPayload time.Duration // extra dispatch per additional payload decompressed
}

// The calibrated profiles. GPU numbers reflect V100-class kernels (HiPress
// reports multi-GB/s compression with a tens-of-µs launch cost, and that
// DGC's top-k selection is the slowest operator); CPU numbers reflect
// 48-core vectorized implementations which the paper observes to be
// markedly slower than GPU kernels but contention-free (§3, Table 1).
var gpuProfiles = map[compress.ID]deviceProfile{
	compress.FP32:      {},
	compress.RandomK:   {launch: 80 * time.Microsecond, compBps: 8e9, decompBps: 20e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
	compress.TopK:      {launch: 100 * time.Microsecond, compBps: 1.2e9, decompBps: 20e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
	compress.DGC:       {launch: 100 * time.Microsecond, compBps: 1.5e9, decompBps: 20e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
	compress.EFSignSGD: {launch: 80 * time.Microsecond, compBps: 6e9, decompBps: 15e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
	compress.QSGD:      {launch: 90 * time.Microsecond, compBps: 3e9, decompBps: 12e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
	compress.TernGrad:  {launch: 90 * time.Microsecond, compBps: 4e9, decompBps: 14e9, denseBps: 200e9, perPayload: 8 * time.Microsecond},
}

// Per-core CPU throughputs; aggregate throughput scales sublinearly with
// cores (parallel efficiency factor applied in NewModels). Selection-type
// algorithms vectorize well on hosts (BytePS-Compress reports CPU
// compression competitive for cheap operators); top-k selection does not.
var cpuPerCore = map[compress.ID]deviceProfile{
	compress.FP32:      {},
	compress.RandomK:   {launch: 10 * time.Microsecond, compBps: 0.30e9, decompBps: 0.40e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
	compress.TopK:      {launch: 10 * time.Microsecond, compBps: 0.30e9, decompBps: 0.40e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
	compress.DGC:       {launch: 10 * time.Microsecond, compBps: 0.35e9, decompBps: 0.40e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
	compress.EFSignSGD: {launch: 8 * time.Microsecond, compBps: 0.35e9, decompBps: 0.35e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
	compress.QSGD:      {launch: 10 * time.Microsecond, compBps: 0.15e9, decompBps: 0.25e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
	compress.TernGrad:  {launch: 10 * time.Microsecond, compBps: 0.20e9, decompBps: 0.30e9, denseBps: 1.5e9, perPayload: 2 * time.Microsecond},
}

// cpuParallelEff is the fraction of linear speedup the host pool achieves
// across all cores (memory-bandwidth bound).
const cpuParallelEff = 0.5

// Models bundles every empirical model for one (cluster, GC algorithm)
// configuration — the output of Espresso's offline profiling stage.
type Models struct {
	Cluster *cluster.Cluster
	Spec    compress.Spec

	// Intra is the intra-machine link among the k GPUs of one machine;
	// Inter is the inter-machine link among the N machines; Flat is the
	// link for single-phase collectives over all N*k GPUs, whose
	// effective bandwidth is the inter-machine NIC shared by the k
	// local GPUs.
	Intra Link
	Inter Link
	Flat  Link

	gpu        deviceProfile
	cpu        deviceProfile
	stagingBps float64
	// gpuScale/cpuScale multiply compression and decompression times on
	// the respective device (1 = healthy). WithDeviceScale sets them; the
	// chaos layer uses them to model slow devices.
	gpuScale float64
	cpuScale float64

	// comp is the Spec's compressor, built once: WireBytes sits on the
	// strategy search's chain-derivation hot path and must not
	// re-construct the compressor per call.
	comp compress.Compressor
}

// NewModels builds the models for a cluster and compression algorithm.
func NewModels(c *cluster.Cluster, spec compress.Spec) (*Models, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	gpu, ok := gpuProfiles[spec.ID]
	if !ok {
		return nil, fmt.Errorf("cost: no GPU profile for %v", spec.ID)
	}
	perCore := cpuPerCore[spec.ID]
	eff := float64(c.CPUCores) * cpuParallelEff
	cpu := deviceProfile{
		launch:     perCore.launch,
		compBps:    perCore.compBps * eff,
		decompBps:  perCore.decompBps * eff,
		denseBps:   perCore.denseBps * eff,
		perPayload: perCore.perPayload,
	}
	flatBps := c.InterBandwidth / float64(c.GPUsPerMachine)
	if c.SingleMachine() {
		flatBps = c.IntraBandwidth
	}
	return &Models{
		Cluster:    c,
		Spec:       spec,
		Intra:      Link{Alpha: c.IntraLatency, Bps: c.IntraBandwidth},
		Inter:      Link{Alpha: c.InterLatency, Bps: c.InterBandwidth},
		Flat:       Link{Alpha: c.InterLatency, Bps: flatBps},
		gpu:        gpu,
		cpu:        cpu,
		stagingBps: c.PCIeHostBandwidth,
		gpuScale:   1,
		cpuScale:   1,
		comp:       compress.MustNew(spec),
	}, nil
}

// WithDeviceScale returns a copy of the models whose compression and
// decompression times are multiplied by gpuScale/cpuScale — a slowed
// device (thermal throttling, contended cores). Scales must be >= 1: a
// fault can only make a device slower.
func (m *Models) WithDeviceScale(gpuScale, cpuScale float64) (*Models, error) {
	if gpuScale < 1 || cpuScale < 1 {
		return nil, fmt.Errorf("cost: device scales %g/%g, want >= 1", gpuScale, cpuScale)
	}
	out := *m
	out.gpuScale = m.gpuScale * gpuScale
	out.cpuScale = m.cpuScale * cpuScale
	return &out, nil
}

// scaleOf is the fault multiplier for dev.
func (m *Models) scaleOf(dev Device) float64 {
	s := m.gpuScale
	if dev == CPU {
		s = m.cpuScale
	}
	if s == 0 { // zero-value Models built without NewModels
		return 1
	}
	return s
}

// Profile is the public view of one device's calibrated compression
// profile, with the active fault scale folded in. Independent predictors
// (internal/oracle) consume it so they can price compression phases from
// the same calibration constants while deriving the time formulas
// themselves — the calibration is shared deliberately, the formulas are
// not.
type Profile struct {
	// Launch is the fixed dispatch overhead per operation.
	Launch time.Duration
	// CompBps is the streaming compression throughput over dense input
	// bytes; DecompBps the scatter/unpack throughput over compressed
	// wire bytes; DenseBps the throughput of the dense accumulate pass.
	CompBps, DecompBps, DenseBps float64
	// PerPayload is the extra dispatch per additional payload decompressed.
	PerPayload time.Duration
	// Scale is the fault multiplier currently applied to the device
	// (1 = healthy).
	Scale float64
}

// Profile reports the calibrated compression profile of dev.
func (m *Models) Profile(dev Device) Profile {
	p := m.profile(dev)
	return Profile{
		Launch:     p.launch,
		CompBps:    p.compBps,
		DecompBps:  p.decompBps,
		DenseBps:   p.denseBps,
		PerPayload: p.perPayload,
		Scale:      m.scaleOf(dev),
	}
}

// StagingBps reports the GPU<->host staging bandwidth in bytes/second.
func (m *Models) StagingBps() float64 { return m.stagingBps }

// MustModels is NewModels for statically known configurations.
func MustModels(c *cluster.Cluster, spec compress.Spec) *Models {
	m, err := NewModels(c, spec)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Models) profile(dev Device) deviceProfile {
	if dev == CPU {
		return m.cpu
	}
	return m.gpu
}

// CompressTime models compressing denseBytes of gradient on dev.
func (m *Models) CompressTime(dev Device, denseBytes int64) time.Duration {
	p := m.profile(dev)
	if p.compBps == 0 {
		return 0 // FP32 passthrough
	}
	base := p.launch + time.Duration(float64(denseBytes)/p.compBps*float64(time.Second))
	return time.Duration(float64(base) * m.scaleOf(dev))
}

// DecompressTime models decompressing copies payloads that each cover
// denseBytes of dense region, including the dense aggregation that
// follows (the paper folds both into "compression time", §3). Scattering
// scales with the compressed wire bytes of each payload; the dense
// accumulate touches the region once.
func (m *Models) DecompressTime(dev Device, denseBytes int64, copies int) time.Duration {
	p := m.profile(dev)
	if p.decompBps == 0 || copies <= 0 {
		return 0
	}
	wire := float64(m.WireBytes(denseBytes)) * float64(copies)
	base := p.launch + time.Duration(copies-1)*p.perPayload +
		time.Duration(wire/p.decompBps*float64(time.Second)) +
		time.Duration(float64(denseBytes)/p.denseBps*float64(time.Second))
	return time.Duration(float64(base) * m.scaleOf(dev))
}

// StagingTime models one PCIe transfer of bytes between GPU and host
// memory, paid in each direction when compression runs on the CPU.
func (m *Models) StagingTime(bytes int64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / m.stagingBps * float64(time.Second))
}

// WireBytes reports the compressed wire size of denseBytes of FP32
// gradient under the configured algorithm.
func (m *Models) WireBytes(denseBytes int64) int64 {
	comp := m.comp
	if comp == nil {
		// Models built by hand (tests) rather than NewModels; do not
		// cache — Models are shared read-only across worker engines.
		comp = compress.MustNew(m.Spec)
	}
	n := int(denseBytes / 4)
	if n == 0 && denseBytes > 0 {
		n = 1
	}
	return int64(comp.WireBytes(n))
}

// Ratio reports the wire-size ratio of the configured algorithm on a
// large tensor (compressed bytes / dense bytes).
func (m *Models) Ratio() float64 {
	const probe = 4 << 20
	return float64(m.WireBytes(probe)) / float64(probe)
}
