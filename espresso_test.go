package espresso

import (
	"encoding/json"
	"strings"
	"testing"
)

func bertJob() Job {
	return Job{
		Model:     ModelSpec{Preset: "bert-base"},
		Cluster:   ClusterSpec{Preset: "nvlink", Machines: 4},
		Algorithm: AlgorithmSpec{Name: "randomk", Ratio: 0.01},
	}
}

func TestSelectEndToEnd(t *testing.T) {
	s, rep, err := Select(bertJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Decisions) != 207 {
		t.Fatalf("%d decisions, want 207", len(s.Decisions))
	}
	if rep.IterTime <= 0 || rep.Throughput <= 0 || rep.ScalingFactor <= 0 {
		t.Fatalf("report not populated: %+v", rep)
	}
	if rep.CompressedTensors == 0 {
		t.Fatal("BERT on 32 GPUs should compress something")
	}
	if rep.Unit != "tokens/s" {
		t.Fatalf("unit = %q", rep.Unit)
	}
}

func TestSelectBeatsEveryBaseline(t *testing.T) {
	job := bertJob()
	_, rep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []BaselineName{FP32, HiPress, HiTopKComm, BytePSCompress} {
		_, brep, err := Baseline(name, job)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Throughput < brep.Throughput*0.999 {
			t.Errorf("Espresso %.0f below %s %.0f", rep.Throughput, name, brep.Throughput)
		}
	}
	ub, err := UpperBound(job)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput > ub.Throughput*1.001 {
		t.Errorf("Espresso %.0f above upper bound %.0f", rep.Throughput, ub.Throughput)
	}
}

func TestPredictRoundTrip(t *testing.T) {
	job := bertJob()
	s, rep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(job, s)
	if err != nil {
		t.Fatal(err)
	}
	if pred.IterTime != rep.IterTime {
		t.Fatalf("Predict %v != Select %v", pred.IterTime, rep.IterTime)
	}
}

func TestPredictRejectsWrongModel(t *testing.T) {
	job := bertJob()
	s, _, err := Baseline(FP32, job)
	if err != nil {
		t.Fatal(err)
	}
	other := job
	other.Model = ModelSpec{Preset: "lstm"}
	if _, err := Predict(other, s); err == nil {
		t.Fatal("cross-model prediction accepted")
	}
}

func TestCustomModelSpec(t *testing.T) {
	job := Job{
		Model: ModelSpec{
			Name: "tiny",
			Tensors: []TensorSpec{
				{Name: "fc2", Elems: 1 << 20, ComputeUs: 500},
				{Name: "fc1", Elems: 4 << 20, ComputeUs: 2000},
			},
			ForwardUs: 1000,
			Batch:     32,
			BatchUnit: "images",
		},
		Cluster:   ClusterSpec{Preset: "pcie", Machines: 2},
		Algorithm: AlgorithmSpec{Name: "efsignsgd"},
	}
	s, rep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Decisions) != 2 || s.Decisions[0].Tensor != "fc2" {
		t.Fatalf("decisions = %+v", s.Decisions)
	}
	if rep.Throughput <= 0 {
		t.Fatal("no throughput")
	}
}

func TestClusterOverrides(t *testing.T) {
	job := bertJob()
	job.Cluster.InterGbps = 400 // a much faster network
	_, fast, err := Baseline(FP32, job)
	if err != nil {
		t.Fatal(err)
	}
	_, slow, err := Baseline(FP32, bertJob())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Throughput <= slow.Throughput {
		t.Fatalf("400Gbps (%v) should beat 100Gbps (%v)", fast.Throughput, slow.Throughput)
	}
}

func TestJobValidation(t *testing.T) {
	bad := []Job{
		{Model: ModelSpec{Preset: "alexnet"}, Cluster: ClusterSpec{Preset: "nvlink", Machines: 2}, Algorithm: AlgorithmSpec{Name: "fp32"}},
		{Model: ModelSpec{}, Cluster: ClusterSpec{Preset: "nvlink", Machines: 2}, Algorithm: AlgorithmSpec{Name: "fp32"}},
		{Model: ModelSpec{Preset: "lstm"}, Cluster: ClusterSpec{Preset: "infiniband", Machines: 2}, Algorithm: AlgorithmSpec{Name: "fp32"}},
		{Model: ModelSpec{Preset: "lstm"}, Cluster: ClusterSpec{Preset: "nvlink", Machines: 2}, Algorithm: AlgorithmSpec{Name: "zstd"}},
		{Model: ModelSpec{Preset: "lstm"}, Cluster: ClusterSpec{Preset: "nvlink", Machines: 2}, Algorithm: AlgorithmSpec{Name: "dgc", Ratio: 2}},
	}
	for i, job := range bad {
		if _, _, err := Select(job); err == nil {
			t.Errorf("bad job %d accepted", i)
		}
	}
	if _, _, err := Baseline("nccl", bertJob()); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestJobJSONRoundTrip(t *testing.T) {
	job := bertJob()
	buf, err := json.Marshal(job)
	if err != nil {
		t.Fatal(err)
	}
	var back Job
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Model.Preset != "bert-base" || back.Algorithm.Ratio != 0.01 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestGanttOutput(t *testing.T) {
	job := Job{
		Model:     ModelSpec{Preset: "lstm"},
		Cluster:   ClusterSpec{Preset: "nvlink", Machines: 2},
		Algorithm: AlgorithmSpec{Name: "dgc", Ratio: 0.01},
	}
	s, _, err := Baseline(FP32, job)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Gantt(job, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"iteration=", "gpu", "inter"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q", want)
		}
	}
}

func TestConstraintsRespected(t *testing.T) {
	job := Job{
		Model:       ModelSpec{Preset: "lstm"},
		Cluster:     ClusterSpec{Preset: "pcie", Machines: 4},
		Algorithm:   AlgorithmSpec{Name: "efsignsgd"},
		Constraints: Constraints{MaxCompressionOps: 2, ForbidCPU: true},
	}
	s, rep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Decisions {
		if d.Device == "CPU" {
			t.Errorf("%s: CPU used despite ForbidCPU", d.Tensor)
		}
		// "comp(" matches both comp and decomp steps.
		if d.Compressed && strings.Count(d.Option, "comp(") > 2 {
			t.Errorf("%s: too many compression ops: %s", d.Tensor, d.Option)
		}
	}
	// The constrained selection can't beat the unconstrained one.
	free := job
	free.Constraints = Constraints{}
	_, freeRep, err := Select(free)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IterTime < freeRep.IterTime {
		t.Errorf("constrained %v beat unconstrained %v", rep.IterTime, freeRep.IterTime)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	job := Job{
		Model:     ModelSpec{Preset: "lstm"},
		Cluster:   ClusterSpec{Preset: "pcie", Machines: 4},
		Algorithm: AlgorithmSpec{Name: "dgc", Ratio: 0.01},
	}
	s, rep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := s.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ImportStrategy(job, buf)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(job, back)
	if err != nil {
		t.Fatal(err)
	}
	if pred.IterTime != rep.IterTime {
		t.Fatalf("imported strategy predicts %v, original %v", pred.IterTime, rep.IterTime)
	}
	// Importing into a mismatched job is rejected.
	other := job
	other.Model = ModelSpec{Preset: "vgg16"}
	if _, err := ImportStrategy(other, buf); err == nil {
		t.Fatal("cross-model import accepted")
	}
	if _, err := ImportStrategy(job, []byte("garbage")); err == nil {
		t.Fatal("garbage import accepted")
	}
}

func TestDecisionsAreDescriptive(t *testing.T) {
	s, _, err := Select(Job{
		Model:     ModelSpec{Preset: "lstm"},
		Cluster:   ClusterSpec{Preset: "pcie", Machines: 8},
		Algorithm: AlgorithmSpec{Name: "efsignsgd"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sawCompressed := false
	for _, d := range s.Decisions {
		if d.Compressed {
			sawCompressed = true
			if d.Device != "GPU" && d.Device != "CPU" {
				t.Errorf("%s: compressed without device: %+v", d.Tensor, d)
			}
			if !strings.Contains(d.Option, "comp(") {
				t.Errorf("%s: option string %q has no compression step", d.Tensor, d.Option)
			}
		}
	}
	if !sawCompressed {
		t.Fatal("LSTM on the PCIe testbed should compress tensors")
	}
	if s.CompressedCount() == 0 {
		t.Fatal("CompressedCount inconsistent")
	}
}

// Job.Parallelism only changes how fast the search runs, never what it
// returns: 0 (default), an explicit worker count, and -1 (one worker
// per CPU) must all produce the same strategy and the same report.
func TestJobParallelismIdenticalResult(t *testing.T) {
	job := Job{
		Model:     ModelSpec{Preset: "lstm"},
		Cluster:   ClusterSpec{Preset: "nvlink", Machines: 4},
		Algorithm: AlgorithmSpec{Name: "dgc", Ratio: 0.01},
	}
	base, baseRep, err := Select(job)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 4, -1} {
		job.Parallelism = p
		s, rep, err := Select(job)
		if err != nil {
			t.Fatalf("parallelism=%d: %v", p, err)
		}
		if rep.IterTime != baseRep.IterTime || rep.Evaluations != baseRep.Evaluations {
			t.Errorf("parallelism=%d: iter/evals %v/%d != default %v/%d",
				p, rep.IterTime, rep.Evaluations, baseRep.IterTime, baseRep.Evaluations)
		}
		if len(s.Decisions) != len(base.Decisions) {
			t.Fatalf("parallelism=%d: %d decisions != %d", p, len(s.Decisions), len(base.Decisions))
		}
		for i := range base.Decisions {
			if s.Decisions[i] != base.Decisions[i] {
				t.Errorf("parallelism=%d: decision %d: %+v != %+v", p, i, s.Decisions[i], base.Decisions[i])
			}
		}
	}
}
