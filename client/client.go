package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to one espresso-serve endpoint.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// Option configures New.
type Option func(*Client)

// WithToken sets the static bearer token sent as Authorization on every
// request.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a client for the server at base
// (e.g. "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 5 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one request: marshals in (when non-nil), decodes the error
// envelope on non-2xx into an *APIError, and decodes the body into out
// (when non-nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb ErrorBody
		if err := json.Unmarshal(data, &eb); err != nil || eb.Error.Code == "" {
			return &APIError{
				Status:  resp.StatusCode,
				Code:    CodeInternal,
				Message: fmt.Sprintf("non-JSON error response: %.200s", data),
			}
		}
		eb.Error.Status = resp.StatusCode
		return &eb.Error
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

// Select runs a synchronous selection on the server.
func (c *Client) Select(ctx context.Context, req SelectRequest) (*SelectResponse, error) {
	var out SelectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/select", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Predict evaluates an explicit strategy's iteration time on the server.
func (c *Client) Predict(ctx context.Context, req PredictRequest) (*SelectResponse, error) {
	var out SelectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/predict", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SubmitJob enqueues an asynchronous job and returns its queued status.
func (c *Client) SubmitJob(ctx context.Context, req JobRequest) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every job in creation order.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob requests cancellation of a queued or running job. The
// returned status is the state at the moment of the request; poll Job
// until it turns terminal.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it reaches a terminal state or ctx expires.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch js.State {
		case "succeeded", "failed", "canceled":
			return js, nil
		}
		select {
		case <-ctx.Done():
			return js, ctx.Err()
		case <-t.C:
		}
	}
}

// Report fetches one persisted report body, verbatim.
func (c *Client) Report(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/reports/"+id, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Reports lists every persisted report.
func (c *Client) Reports(ctx context.Context) ([]ReportMeta, error) {
	var out ReportList
	if err := c.do(ctx, http.MethodGet, "/v1/reports", nil, &out); err != nil {
		return nil, err
	}
	return out.Reports, nil
}

// Diff compares two persisted select/predict reports.
func (c *Client) Diff(ctx context.Context, a, b string) (*DiffResponse, error) {
	var out DiffResponse
	if err := c.do(ctx, http.MethodGet, "/v1/reports/"+a+"/diff/"+b, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz checks liveness (the unauthenticated observability probe).
func (c *Client) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz returned %d", resp.StatusCode)
	}
	return nil
}
