// Package client is the typed Go client for the espresso-serve
// selection API, and the home of the API's wire types: the server
// (internal/serve), the CLIs, and the conformance tests all marshal
// through the structs in this file, so the JSON contract is defined in
// exactly one place and pinned by the golden-file tests.
//
// The wire encoding is deliberately deterministic: responses carry no
// wall-clock fields (timings travel in headers), durations are integer
// nanoseconds of virtual time, and map-free structures keep field order
// fixed — the e2e suite byte-compares API responses against direct
// in-process calls.
package client

import (
	"encoding/json"
	"fmt"
)

// GenConfig mirrors internal/gen.Config on the wire: bounds for the
// seeded case generator. Zero fields select the generator's defaults.
type GenConfig struct {
	MinTensors  int `json:"min_tensors,omitempty"`
	MaxTensors  int `json:"max_tensors,omitempty"`
	MinElems    int `json:"min_elems,omitempty"`
	MaxElems    int `json:"max_elems,omitempty"`
	MaxMachines int `json:"max_machines,omitempty"`
}

// SelectRequest asks for a synchronous strategy selection on the seeded
// generated case. The seed fully determines the workload (model,
// cluster, compressor), so a request is reproducible by construction.
type SelectRequest struct {
	Seed uint64    `json:"seed"`
	Gen  GenConfig `json:"gen"`
	// Parallelism fans the selection's F(S) evaluations out over a
	// worker pool; the result is bit-identical at every setting.
	Parallelism int `json:"parallelism,omitempty"`
}

// PredictRequest asks for the predicted iteration time of an explicit
// strategy on the seeded case. Strategy is the JSON array produced by
// the select endpoint's "strategy" field (one option per tensor).
type PredictRequest struct {
	Seed     uint64          `json:"seed"`
	Gen      GenConfig       `json:"gen"`
	Strategy json.RawMessage `json:"strategy"`
}

// CaseInfo describes the generated case a response was computed on.
type CaseInfo struct {
	Seed           uint64 `json:"seed"`
	Summary        string `json:"summary"`
	Tensors        int    `json:"tensors"`
	Machines       int    `json:"machines"`
	GPUsPerMachine int    `json:"gpus_per_machine"`
	Algorithm      string `json:"algorithm"`
}

// SelectReport is the deterministic subset of core.Report: everything
// the search decided, nothing the wall clock measured (selection
// wall time travels in the X-Selection-Wall-Us response header).
type SelectReport struct {
	IterNs         int64 `json:"iter_ns"`
	Evals          int   `json:"evals"`
	Candidates     int   `json:"candidates"`
	OffloadSearch  int   `json:"offload_search"`
	OffloadTensors int   `json:"offload_tensors"`
	Compressed     int   `json:"compressed"`
	Offloaded      int   `json:"offloaded"`
	Ruled          int   `json:"ruled"`
}

// SelectResponse is the body of POST /v1/select and /v1/predict, and —
// verbatim — the persisted report row those calls leave behind
// (GET /v1/reports/{id} returns these same bytes).
type SelectResponse struct {
	ID   string   `json:"id"`
	Kind string   `json:"kind"` // "select" or "predict"
	Case CaseInfo `json:"case"`
	// Strategy is the selected (or echoed, for predict) strategy as the
	// canonical strategy-codec JSON: one option per tensor.
	Strategy json.RawMessage `json:"strategy"`
	Report   SelectReport    `json:"report"`
}

// JobRequest submits an asynchronous job. Kind selects the payload:
//
//   - "chaos": replay Iters iterations of the seeded case under the
//     inline fault-injection Plan (the internal/chaos plan schema) and
//     persist the full chaos report.
//   - "verify": run Cases differential-oracle cases starting at Seed
//     (the espresso-verify harness) and persist the summary.
type JobRequest struct {
	Kind string    `json:"kind"`
	Seed uint64    `json:"seed"`
	Gen  GenConfig `json:"gen"`
	// Iters is the chaos iteration count (default 8).
	Iters int `json:"iters,omitempty"`
	// Plan is the inline chaos plan JSON; required for chaos jobs.
	Plan json.RawMessage `json:"plan,omitempty"`
	// Cases is the verify case count (default 20).
	Cases int `json:"cases,omitempty"`
	// Parallelism configures the selection searches inside the job.
	Parallelism int `json:"parallelism,omitempty"`
	// DeadlineMs overrides the server's per-job deadline (capped by it).
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// JobStatus is one job's externally visible state.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"` // queued, running, succeeded, failed, canceled
	Error string `json:"error,omitempty"`
	// ReportID names the persisted report once the job succeeded.
	ReportID string `json:"report_id,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// ReportMeta is one row of the report listing.
type ReportMeta struct {
	ID   string `json:"id"`
	Kind string `json:"kind"`
	Seed uint64 `json:"seed"`
}

// ReportList is the body of GET /v1/reports.
type ReportList struct {
	Reports []ReportMeta `json:"reports"`
}

// ChaosResponse is the persisted body of a chaos job's report.
type ChaosResponse struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"` // "chaos"
	Case  CaseInfo `json:"case"`
	Iters int      `json:"iters"`
	// Chaos is the full internal/chaos report (plan, per-iteration
	// samples, membership events, network fault statistics), produced in
	// deterministic mode so reruns at the same seed are byte-identical.
	Chaos json.RawMessage `json:"chaos"`
}

// VerifyFailure is one violated assertion of a verify job.
type VerifyFailure struct {
	Seed   uint64 `json:"seed"`
	Check  string `json:"check"`
	Detail string `json:"detail"`
}

// VerifyResponse is the persisted body of a verify job's report.
type VerifyResponse struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"` // "verify"
	Seed  uint64 `json:"seed"`
	Cases int    `json:"cases"`
	// Assertions counts executed checks per check name (JSON object
	// keys marshal sorted, so the encoding is deterministic).
	Assertions map[string]int  `json:"assertions"`
	Failures   []VerifyFailure `json:"failures"`
	Passed     bool            `json:"passed"`
}

// StrategyChange is one per-tensor difference between two reports'
// strategies, rendered as the options' canonical keys.
type StrategyChange struct {
	Tensor int    `json:"tensor"`
	A      string `json:"a"`
	B      string `json:"b"`
}

// DiffResponse is the body of GET /v1/reports/{a}/diff/{b}: the
// selection-level deltas between two persisted select/predict reports.
type DiffResponse struct {
	A               string           `json:"a"`
	B               string           `json:"b"`
	SeedA           uint64           `json:"seed_a"`
	SeedB           uint64           `json:"seed_b"`
	IterDeltaNs     int64            `json:"iter_delta_ns"`
	EvalsDelta      int              `json:"evals_delta"`
	CompressedDelta int              `json:"compressed_delta"`
	OffloadedDelta  int              `json:"offloaded_delta"`
	StrategyChanges []StrategyChange `json:"strategy_changes"`
}

// APIError is the structured error every non-2xx response carries,
// wrapped in an {"error": ...} envelope. It doubles as the client's
// error type: errors.As(err, &apiErr) recovers the status and code.
type APIError struct {
	// Status is the HTTP status code (not part of the body).
	Status    int    `json:"-"`
	Code      string `json:"code"`
	Message   string `json:"message"`
	RequestID string `json:"request_id,omitempty"`
}

// Error codes. The error-contract test pins one per 4xx/5xx path.
const (
	CodeBadRequest   = "bad_request"
	CodeUnauthorized = "unauthorized"
	CodeNotFound     = "not_found"
	CodeMethod       = "method_not_allowed"
	CodeConflict     = "conflict"
	CodeTooLarge     = "request_too_large"
	CodeInternal     = "internal"
)

func (e *APIError) Error() string {
	return fmt.Sprintf("api error %d %s: %s (request %s)", e.Status, e.Code, e.Message, e.RequestID)
}

// ErrorBody is the error envelope.
type ErrorBody struct {
	Error APIError `json:"error"`
}
