package espresso

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
	"time"
)

// chromeEvent is the subset of the trace-event schema the tests verify.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// The acceptance walk: the shipped BERT job config, traced through the
// public API, yields a valid Chrome trace with at least one complete
// event per phase per rank, and span times consistent with the report.
func TestSelectTracedOnBERTConfig(t *testing.T) {
	data, err := os.ReadFile("configs/bert_nvlink.json")
	if err != nil {
		t.Fatal(err)
	}
	var job Job
	if err := json.Unmarshal(data, &job); err != nil {
		t.Fatal(err)
	}
	// espresso-sim's data-plane scale: at 2 GPUs per machine the BERT
	// selection offloads compression to CPUs, so the offload and decode
	// phases appear in the trace alongside the rest.
	job.Cluster.GPUsPerMachine = 2

	tel := NewTelemetry()
	s, rep, err := SelectTraced(job, tel)
	if err != nil {
		t.Fatal(err)
	}
	if tel.SpanCount() == 0 {
		t.Fatal("no spans collected")
	}

	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}

	perRankPhase := map[int]map[string]int{}
	var maxEndUs float64
	for _, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 || ev.Ts < 0 {
				t.Fatalf("negative time in event %+v", ev)
			}
			if perRankPhase[ev.Pid] == nil {
				perRankPhase[ev.Pid] = map[string]int{}
			}
			perRankPhase[ev.Pid][ev.Cat]++
			if end := ev.Ts + ev.Dur; end > maxEndUs {
				maxEndUs = end
			}
		case "M":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}

	if len(perRankPhase) != job.Cluster.Machines {
		t.Fatalf("trace covers %d ranks, want %d", len(perRankPhase), job.Cluster.Machines)
	}
	// The BERT selection compresses on CPUs, so every telemetry phase of
	// the timeline appears on every rank.
	phases := []string{"compute", "encode", "decode",
		"intra-collective", "inter-collective"}
	if rep.OffloadedTensors > 0 {
		phases = append(phases, "offload")
	}
	for rank, got := range perRankPhase {
		for _, p := range phases {
			if got[p] == 0 {
				t.Errorf("rank %d has no %q span", rank, p)
			}
		}
	}

	// Virtual time sanity: the last span ends at the backward-pass
	// makespan, which is bounded by the reported iteration time.
	iterUs := float64(rep.IterTime) / float64(time.Microsecond)
	if maxEndUs <= 0 || maxEndUs > iterUs {
		t.Errorf("last span ends at %.1fus, iteration time is %.1fus", maxEndUs, iterUs)
	}

	// The search published its effort alongside the spans.
	var mbuf bytes.Buffer
	if err := tel.WriteMetrics(&mbuf); err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters   map[string]int64   `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(mbuf.Bytes(), &metrics); err != nil {
		t.Fatalf("metrics output is not valid JSON: %v", err)
	}
	if got := metrics.Counters["search.evals"]; got != int64(rep.Evaluations) {
		t.Errorf("search.evals = %d, report says %d", got, rep.Evaluations)
	}
	if got := metrics.Gauges["search.compressed"]; got != float64(rep.CompressedTensors) {
		t.Errorf("search.compressed = %v, report says %d", got, rep.CompressedTensors)
	}
	// The traced call timed its own wall clock: one observation, at
	// least as long as the search the report measured.
	if h := metrics.Histograms["api.select.wall_seconds"]; h.Count != 1 || h.Sum < rep.SelectionTime.Seconds() {
		t.Errorf("api.select.wall_seconds = %d obs / %.3fs, want 1 obs >= selection time %v",
			h.Count, h.Sum, rep.SelectionTime)
	}

	// PredictTraced replays the same strategy into a fresh collector.
	tel2 := NewTelemetry()
	rep2, err := PredictTraced(job, s, tel2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.IterTime != rep.IterTime {
		t.Errorf("replay predicts %v, selection predicted %v", rep2.IterTime, rep.IterTime)
	}
	if tel2.SpanCount() != tel.SpanCount() {
		t.Errorf("replay collected %d spans, selection %d", tel2.SpanCount(), tel.SpanCount())
	}
}

func TestTelemetryNilAndReset(t *testing.T) {
	job := bertJob()
	// A nil collector degrades to the untraced paths.
	s, _, err := SelectTraced(job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PredictTraced(job, s, nil); err != nil {
		t.Fatal(err)
	}

	tel := NewTelemetry()
	if _, err := PredictTraced(job, s, tel); err != nil {
		t.Fatal(err)
	}
	if tel.SpanCount() == 0 {
		t.Fatal("no spans collected")
	}
	tel.Reset()
	if tel.SpanCount() != 0 {
		t.Errorf("%d spans survive Reset", tel.SpanCount())
	}
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			t.Fatalf("span event after Reset: %+v", ev)
		}
	}
}
