package espresso

import (
	"fmt"
	"io"

	"espresso/internal/core"
	"espresso/internal/obs"
	"espresso/internal/timeline"
)

// Telemetry collects the virtual-time trace and the metrics of a traced
// Select or Predict call: one Chrome trace-event span per operation per
// rank (open the WriteTrace output in Perfetto or chrome://tracing), plus
// a registry of counters, gauges, and histograms — wire bytes, queue
// waits, resource utilization, strategy-search effort. One Telemetry can
// accumulate several calls; spans and counters append.
type Telemetry struct {
	trace   *obs.Trace
	metrics *obs.Metrics
}

// NewTelemetry returns an empty collector.
func NewTelemetry() *Telemetry {
	return &Telemetry{trace: obs.NewTrace(), metrics: obs.NewMetrics()}
}

// WriteTrace writes the collected spans as Chrome trace-event JSON —
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps
// are the simulation's virtual clock in microseconds; each rank is a
// process, each device (gpu, cpu, pcie, intra, inter, nic) a thread.
func (t *Telemetry) WriteTrace(w io.Writer) error { return t.trace.WriteChrome(w) }

// WriteMetrics writes the metrics registry as JSON: counters, gauges, and
// cumulative (Prometheus-style) histograms.
func (t *Telemetry) WriteMetrics(w io.Writer) error { return t.metrics.WriteJSON(w) }

// SpanCount reports how many spans have been collected.
func (t *Telemetry) SpanCount() int { return t.trace.Len() }

// Reset discards everything collected so far.
func (t *Telemetry) Reset() {
	t.trace.Reset()
	t.metrics = obs.NewMetrics()
}

// observe replays a strategy's derived timeline into the collector.
func (t *Telemetry) observe(r *resolved, s *Strategy) error {
	eng := timeline.New(r.m, r.c, r.cm)
	res, err := eng.Evaluate(s.inner)
	if err != nil {
		return err
	}
	return eng.Observe(t.trace, t.metrics, res, s.inner)
}

// SelectTraced is Select with telemetry: the strategy search publishes
// its effort into tel's metrics (search.* series), and the selected
// strategy's derived timeline lands in tel's trace — one span per
// compute/encode/collective/decode/offload operation per rank.
func SelectTraced(job Job, tel *Telemetry) (*Strategy, *Report, error) {
	if tel == nil {
		return Select(job)
	}
	// Wall clock, not virtual time: api.* series observe the process's
	// own performance, the quantity espresso-load drives.
	defer tel.metrics.Timer("api.select.wall_seconds")()
	r, err := job.resolve()
	if err != nil {
		return nil, nil, err
	}
	sel := core.NewSelector(r.m, r.c, r.cm)
	sel.Parallelism = job.workers()
	sel.Explain = job.Explain
	sel.Obs = tel.metrics
	if err := applyConstraints(sel, job, r); err != nil {
		return nil, nil, err
	}
	s, rep, err := sel.Select()
	if err != nil {
		return nil, nil, err
	}
	out := report(r, rep.Iter)
	out.SelectionTime = rep.SelectionTime
	out.Evaluations = rep.Evals
	out.CompressedTensors = rep.Compressed
	out.OffloadedTensors = rep.Offloaded
	out.Decisions = choices(rep.Decisions)
	wrapped := wrapStrategy(s, r.m)
	if err := tel.observe(r, wrapped); err != nil {
		return nil, nil, fmt.Errorf("espresso: telemetry: %w", err)
	}
	return wrapped, out, nil
}

// PredictTraced is Predict with telemetry: the strategy's derived
// timeline is replayed into tel alongside the performance report.
func PredictTraced(job Job, s *Strategy, tel *Telemetry) (*Report, error) {
	if tel != nil {
		defer tel.metrics.Timer("api.predict.wall_seconds")()
	}
	rep, err := Predict(job, s)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		r, err := job.resolve()
		if err != nil {
			return nil, err
		}
		if err := tel.observe(r, s); err != nil {
			return nil, fmt.Errorf("espresso: telemetry: %w", err)
		}
	}
	return rep, nil
}
