package espresso_test

import (
	"fmt"
	"log/slog"
	"os"

	"espresso"
)

// Selecting a strategy for a small LSTM job and inspecting the outcome.
func ExampleSelect() {
	job := espresso.Job{
		Model:     espresso.ModelSpec{Preset: "lstm"},
		Cluster:   espresso.ClusterSpec{Preset: "pcie", Machines: 8},
		Algorithm: espresso.AlgorithmSpec{Name: "efsignsgd"},
	}
	strategy, report, err := espresso.Select(job)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	fmt.Printf("tensors: %d\n", len(strategy.Decisions))
	fmt.Printf("compressed: %d\n", report.CompressedTensors)
	fmt.Printf("beats fp32: %v\n", func() bool {
		_, fp32, err := espresso.Baseline(espresso.FP32, job)
		if err != nil {
			slog.Error(err.Error())
			os.Exit(1)
		}
		return report.Throughput > fp32.Throughput
	}())
	// Output:
	// tensors: 10
	// compressed: 3
	// beats fp32: true
}

// Comparing a baseline system against the compression-free upper bound.
func ExampleBaseline() {
	job := espresso.Job{
		Model:     espresso.ModelSpec{Preset: "lstm"},
		Cluster:   espresso.ClusterSpec{Preset: "nvlink", Machines: 4},
		Algorithm: espresso.AlgorithmSpec{Name: "dgc", Ratio: 0.01},
	}
	_, hipress, err := espresso.Baseline(espresso.HiPress, job)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	ub, err := espresso.UpperBound(job)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	fmt.Printf("hipress below upper bound: %v\n", hipress.Throughput < ub.Throughput)
	// Output:
	// hipress below upper bound: true
}

// Describing a custom model instead of using a preset.
func ExampleModelSpec_custom() {
	job := espresso.Job{
		Model: espresso.ModelSpec{
			Name: "two-layer",
			Tensors: []espresso.TensorSpec{
				{Name: "fc2.weight", Elems: 1 << 20, ComputeUs: 800},
				{Name: "fc1.weight", Elems: 8 << 20, ComputeUs: 3000},
			},
			ForwardUs: 2000,
			Batch:     64,
			BatchUnit: "images",
		},
		Cluster:   espresso.ClusterSpec{Preset: "nvlink", Machines: 2},
		Algorithm: espresso.AlgorithmSpec{Name: "randomk", Ratio: 0.01},
	}
	s, _, err := espresso.Select(job)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(1)
	}
	fmt.Println(len(s.Decisions), "decisions")
	// Output:
	// 2 decisions
}
